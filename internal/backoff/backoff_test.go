package backoff

import (
	"context"
	"testing"
	"time"
)

// TestGrowthAndCap pins the deterministic skeleton: with jitter
// disabled the sequence is base, base*factor, ..., capped at Max.
func TestGrowthAndCap(t *testing.T) {
	p := &Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Next(); got != w*time.Millisecond {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
	if p.Attempts() != len(want) {
		t.Fatalf("attempts = %d, want %d", p.Attempts(), len(want))
	}
}

// TestJitterBounds verifies jittered delays stay in [d*(1-j), d] and
// actually vary.
func TestJitterBounds(t *testing.T) {
	seen := map[time.Duration]bool{}
	for trial := 0; trial < 50; trial++ {
		p := &Policy{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
		d := p.Next()
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered first delay %v outside [50ms, 100ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced no variation across 50 fresh policies")
	}
}

// TestZeroValueDefaults: the zero Policy behaves like Default() — 100ms
// base with half-width jitter, 15s cap.
func TestZeroValueDefaults(t *testing.T) {
	p := Default()
	d := p.Next()
	if d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("zero-value first delay %v outside [50ms, 100ms]", d)
	}
	for i := 0; i < 20; i++ {
		d = p.Next()
	}
	if d > 15*time.Second {
		t.Fatalf("delay %v exceeded the 15s default cap", d)
	}
}

// TestReset snaps the sequence back to base.
func TestReset(t *testing.T) {
	p := &Policy{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1}
	p.Next()
	p.Next()
	p.Next()
	p.Reset()
	if got := p.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset, Next() = %v, want 10ms", got)
	}
}

// TestSleepCancel: a canceled context interrupts the wait promptly.
func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() { done <- Sleep(ctx, 10*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep returned %v, want context.Canceled", err)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatalf("Sleep took %v to notice cancellation", time.Since(start))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not return after cancel")
	}
}

// TestSleepZero returns immediately without arming a timer.
func TestSleepZero(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v", err)
	}
}

// TestSleepNext composes: canceled context surfaces through SleepNext.
func TestSleepNext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := &Policy{Base: time.Hour}
	if err := p.SleepNext(ctx); err != context.Canceled {
		t.Fatalf("SleepNext on canceled ctx = %v, want context.Canceled", err)
	}
}
