// Package backoff implements jittered exponential backoff for retry
// loops that must neither hammer a struggling peer nor synchronize
// their retries into thundering herds. The follower reconnect loop in
// internal/replication is the primary consumer, but the policy is
// generic: Next yields a growing, randomized delay, Reset snaps back to
// the base after a success, and Sleep waits out a delay under a
// context so shutdown never blocks on a pending retry.
package backoff

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy produces the delay sequence. The zero value is usable and
// equivalent to Default(). A Policy is safe for use from one goroutine;
// retry loops own their Policy.
type Policy struct {
	// Base is the first delay (default 100ms).
	Base time.Duration
	// Max caps the grown delay before jitter (default 15s).
	Max time.Duration
	// Factor multiplies the delay per attempt (default 2).
	Factor float64
	// Jitter is the fraction of the grown delay that is randomized
	// (default 0.5): the returned delay is uniform in
	// [d*(1-Jitter), d]. 0 disables jitter; values are clamped to [0, 1].
	Jitter float64

	mu      sync.Mutex
	attempt int
	rng     *rand.Rand
}

// Default returns the policy the replication reconnect loop uses:
// 100ms base, 15s cap, doubling, half-width jitter.
func Default() *Policy { return &Policy{} }

func (p *Policy) defaults() (base, max time.Duration, factor, jitter float64) {
	base, max, factor, jitter = p.Base, p.Max, p.Factor, p.Jitter
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 15 * time.Second
	}
	if factor < 1 {
		factor = 2
	}
	if p.Jitter == 0 && p.Base == 0 && p.Max == 0 && p.Factor == 0 {
		jitter = 0.5 // zero-value Policy gets the default jitter
	}
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	return base, max, factor, jitter
}

// Next returns the delay to wait before the next attempt and advances
// the sequence. The n-th call (0-based) grows the base by Factor^n,
// capped at Max, then subtracts a uniform random slice up to
// Jitter*delay so concurrent retriers spread out.
func (p *Policy) Next() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	base, max, factor, jitter := p.defaults()
	d := float64(base)
	for i := 0; i < p.attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	p.attempt++
	if jitter > 0 {
		if p.rng == nil {
			p.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		d -= p.rng.Float64() * jitter * d
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Attempts reports how many delays Next has handed out since the last
// Reset.
func (p *Policy) Attempts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attempt
}

// Reset snaps the sequence back to the base delay. Call it after a
// successful attempt so the next failure starts patient, not paranoid.
func (p *Policy) Reset() {
	p.mu.Lock()
	p.attempt = 0
	p.mu.Unlock()
}

// Sleep waits out d or returns early with ctx.Err() when the context
// is canceled — a retry loop's shutdown must never be blocked by its
// own backoff timer.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SleepNext is the common loop step: Next then Sleep.
func (p *Policy) SleepNext(ctx context.Context) error {
	return Sleep(ctx, p.Next())
}
