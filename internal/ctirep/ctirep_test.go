package ctirep

import (
	"testing"
	"time"

	"securitykg/internal/ontology"
)

func TestNewIDStable(t *testing.T) {
	a := NewID("src", "https://x/1")
	b := NewID("src", "https://x/1")
	c := NewID("src", "https://x/2")
	d := NewID("other", "https://x/1")
	if a != b {
		t.Error("same inputs must give same ID")
	}
	if a == c || a == d {
		t.Error("different inputs must give different IDs")
	}
	if len(a) != 24 {
		t.Errorf("ID length %d", len(a))
	}
}

func TestReportRepRoundTrip(t *testing.T) {
	r := &ReportRep{
		ID:        NewID("acme", "https://acme/r/1"),
		Source:    "acme",
		URL:       "https://acme/r/1",
		Title:     "Example",
		Format:    "html",
		Pages:     [][]byte{[]byte("<html>p1</html>"), []byte("<html>p2</html>")},
		Meta:      map[string]string{"category": "blog"},
		FetchedAt: time.Date(2021, 2, 26, 10, 0, 0, 0, time.UTC),
	}
	b, err := EncodeReportRep(r)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DecodeReportRep(b)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ID != r.ID || r2.Title != r.Title || len(r2.Pages) != 2 {
		t.Errorf("round trip mismatch: %+v", r2)
	}
	if string(r2.Pages[1]) != "<html>p2</html>" {
		t.Errorf("page bytes lost: %q", r2.Pages[1])
	}
	if !r2.FetchedAt.Equal(r.FetchedAt) {
		t.Errorf("timestamp lost: %v", r2.FetchedAt)
	}
}

func TestCTIRepRoundTripWithEntities(t *testing.T) {
	c := &CTIRep{
		ReportID: "abc",
		Source:   "acme",
		URL:      "https://acme/r/1",
		Title:    "WannaCry Analysis",
		Vendor:   "AcmeSec",
		Kind:     "malware",
		Text:     "body text",
		Fields:   map[string]string{"platform": "Windows"},
		Entities: []ontology.Entity{
			{Type: ontology.TypeMalware, Name: "WannaCry"},
		},
		Relations: []ontology.Relation{{
			Src:  ontology.Entity{Type: ontology.TypeMalware, Name: "WannaCry"},
			Type: ontology.RelConnectsTo,
			Dst:  ontology.Entity{Type: ontology.TypeIP, Name: "1.2.3.4"},
		}},
	}
	b, err := EncodeCTIRep(c)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := DecodeCTIRep(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Entities) != 1 || c2.Entities[0].Name != "WannaCry" {
		t.Errorf("entities lost: %+v", c2.Entities)
	}
	if len(c2.Relations) != 1 || c2.Relations[0].Type != ontology.RelConnectsTo {
		t.Errorf("relations lost: %+v", c2.Relations)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeReportRep([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted for report rep")
	}
	if _, err := DecodeCTIRep([]byte("{bad")); err == nil {
		t.Error("bad JSON accepted for CTI rep")
	}
}

func TestReportEntityKinds(t *testing.T) {
	cases := map[string]ontology.EntityType{
		"malware":       ontology.TypeMalwareReport,
		"vulnerability": ontology.TypeVulnerabilityReport,
		"attack":        ontology.TypeAttackReport,
		"unknown":       ontology.TypeAttackReport,
	}
	for kind, want := range cases {
		c := &CTIRep{ReportID: "id1", Title: "T", Kind: kind, Source: "s", URL: "u",
			PublishedAt: "2021-01-01"}
		e := c.ReportEntity()
		if e.Type != want {
			t.Errorf("kind %q -> %s, want %s", kind, e.Type, want)
		}
		if e.Name != "T" || e.Attrs["report_id"] != "id1" || e.Attrs["published_at"] != "2021-01-01" {
			t.Errorf("entity attrs wrong: %+v", e)
		}
		if err := e.Validate(); err != nil {
			t.Errorf("report entity invalid: %v", err)
		}
	}
	// Untitled reports fall back to the ID as name.
	c := &CTIRep{ReportID: "id2", Kind: "malware"}
	if e := c.ReportEntity(); e.Name != "id2" {
		t.Errorf("untitled fallback: %+v", e)
	}
}
