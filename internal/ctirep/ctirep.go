// Package ctirep defines the two serializable intermediate representations
// the pipeline hands between stages (Section 2.1 of the paper):
//
//   - ReportRep — the intermediate report representation produced by
//     porters from raw crawled files (grouped pages + metadata);
//   - CTIRep — the intermediate CTI representation produced by
//     source-dependent parsers and refined by source-independent
//     extractors, covering every field any data source can provide.
//
// Both marshal to JSON so pipeline steps can run in separate processes and
// pass work across the network, which is what makes the design scale out.
package ctirep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"securitykg/internal/ontology"
)

// RawFile is one fetched document exactly as the crawler stored it.
type RawFile struct {
	Source    string    `json:"source"` // source slug
	URL       string    `json:"url"`    // canonical fetch URL
	Format    string    `json:"format"` // "html" or "pdf"
	Body      []byte    `json:"body"`   // raw bytes
	FetchedAt time.Time `json:"fetched_at"`
}

// ReportRep is the intermediate report representation: a (possibly
// multi-page) report with collection metadata attached by the porter.
type ReportRep struct {
	ID        string            `json:"id"`     // stable content-derived id
	Source    string            `json:"source"` // source slug
	URL       string            `json:"url"`    // canonical URL of page 1
	Title     string            `json:"title,omitempty"`
	Format    string            `json:"format"`
	Pages     [][]byte          `json:"pages"` // raw page bodies in order
	Meta      map[string]string `json:"meta,omitempty"`
	FetchedAt time.Time         `json:"fetched_at"`
}

// NewID derives a stable report ID from source and canonical URL.
func NewID(source, url string) string {
	sum := sha256.Sum256([]byte(source + "\x00" + url))
	return hex.EncodeToString(sum[:12])
}

// CTIRep is the intermediate CTI representation: the unified wide schema
// every parser fills (structured fields) and every extractor refines
// (entities, relations). Connectors refactor it into ontology form.
type CTIRep struct {
	ReportID    string            `json:"report_id"`
	Source      string            `json:"source"`
	URL         string            `json:"url"`
	Title       string            `json:"title"`
	Vendor      string            `json:"vendor,omitempty"`
	Kind        string            `json:"kind"` // malware | vulnerability | attack
	PublishedAt string            `json:"published_at,omitempty"`
	Text        string            `json:"text"`             // unstructured body text
	Fields      map[string]string `json:"fields,omitempty"` // structured key-values
	// Extractor-filled slots.
	Entities  []ontology.Entity   `json:"entities,omitempty"`
	Relations []ontology.Relation `json:"relations,omitempty"`
}

// ReportEntity builds the report's own ontology entity.
func (c *CTIRep) ReportEntity() ontology.Entity {
	name := c.Title
	if name == "" {
		name = c.ReportID
	}
	attrs := map[string]string{
		"report_id": c.ReportID,
		"source":    c.Source,
		"url":       c.URL,
	}
	if c.PublishedAt != "" {
		attrs["published_at"] = c.PublishedAt
	}
	return ontology.Entity{
		Type:  ontology.ReportTypeFor(c.Kind),
		Name:  name,
		Attrs: attrs,
	}
}

// --- serialization (the cross-stage wire format) ---

// EncodeReportRep marshals a ReportRep for cross-stage hand-off.
func EncodeReportRep(r *ReportRep) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("ctirep: encode report rep: %w", err)
	}
	return b, nil
}

// DecodeReportRep unmarshals a ReportRep.
func DecodeReportRep(b []byte) (*ReportRep, error) {
	var r ReportRep
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("ctirep: decode report rep: %w", err)
	}
	return &r, nil
}

// EncodeCTIRep marshals a CTIRep for cross-stage hand-off.
func EncodeCTIRep(c *CTIRep) ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("ctirep: encode cti rep: %w", err)
	}
	return b, nil
}

// DecodeCTIRep unmarshals a CTIRep.
func DecodeCTIRep(b []byte) (*CTIRep, error) {
	var c CTIRep
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("ctirep: decode cti rep: %w", err)
	}
	return &c, nil
}
