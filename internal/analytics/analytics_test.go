package analytics

import (
	"fmt"
	"math"
	"testing"

	"securitykg/internal/graph"
	"securitykg/internal/ontology"
)

func buildKG(t *testing.T) *graph.Store {
	t.Helper()
	s := graph.New()
	add := func(typ, name string, attrs map[string]string) graph.NodeID {
		id, _ := s.MergeNode(typ, name, attrs)
		return id
	}
	edge := func(a graph.NodeID, rel string, b graph.NodeID) {
		if _, _, err := s.AddEdge(a, rel, b, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Hub malware described by 3 reports; lesser malware by 1.
	hub := add("Malware", "BigThreat", nil)
	minor := add("Malware", "MinorThreat", nil)
	for i := 0; i < 3; i++ {
		rep := add("MalwareReport", fmt.Sprintf("rep-hub-%d", i),
			map[string]string{"published_at": fmt.Sprintf("2021-%02d-10", i+1)})
		edge(rep, "DESCRIBES", hub)
	}
	rep := add("MalwareReport", "rep-minor", map[string]string{"published_at": "2021-01-20"})
	edge(rep, "DESCRIBES", minor)

	// Actors with overlapping portfolios.
	a1 := add("ThreatActor", "AlphaGroup", nil)
	a2 := add("ThreatActor", "BetaGroup", nil)
	a3 := add("ThreatActor", "GammaGroup", nil)
	t1 := add("Technique", "spearphishing", nil)
	t2 := add("Technique", "credential dumping", nil)
	t3 := add("Technique", "dns tunneling", nil)
	tool := add("Tool", "Mimikatz", nil)
	sw := add("Software", "Exchange Server", nil)
	edge(a1, "USE", t1)
	edge(a1, "USE", t2)
	edge(a1, "USE", tool)
	edge(a2, "USE", t1)
	edge(a2, "USE", t2)
	edge(a3, "USE", t3)
	edge(a1, "TARGET", sw)
	edge(hub, "ATTRIBUTED_TO", a1)

	// An isolated pair: its own component.
	iso1 := add("Malware", "Standalone", nil)
	iso2 := add("IP", "203.0.113.9", nil)
	edge(iso1, "CONNECT", iso2)
	return s
}

func TestPageRankSumsToOneAndRanksHubs(t *testing.T) {
	s := buildKG(t)
	ranks := PageRank(s, 0.85, 40)
	var sum float64
	for _, r := range ranks {
		if r < 0 {
			t.Fatalf("negative rank %f", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %f, want 1", sum)
	}
	hub := s.FindNode("Malware", "BigThreat")
	minor := s.FindNode("Malware", "MinorThreat")
	if ranks[hub.ID] <= ranks[minor.ID] {
		t.Errorf("hub (%f) should outrank minor (%f)", ranks[hub.ID], ranks[minor.ID])
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	if got := PageRank(graph.New(), 0.85, 10); len(got) != 0 {
		t.Errorf("empty graph ranks: %v", got)
	}
}

func TestTopThreatsFiltersAndOrders(t *testing.T) {
	s := buildKG(t)
	top := TopThreats(s, 3, []ontology.EntityType{ontology.TypeMalware})
	if len(top) != 3 {
		t.Fatalf("top: %d", len(top))
	}
	if top[0].Node.Name != "BigThreat" {
		t.Errorf("top threat: %s", top[0].Node.Name)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("not sorted by score")
		}
	}
	// Default filter: threat concepts only (no reports/IOCs).
	for _, r := range TopThreats(s, 0, nil) {
		et := ontology.EntityType(r.Node.Type)
		if !ontology.IsThreatConcept(et) {
			t.Errorf("non-threat-concept in default TopThreats: %s", r.Node.Type)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	s := buildKG(t)
	// Four clusters: the hub campaign (reports, actors, techniques, tool,
	// software), MinorThreat+its report, GammaGroup+its technique, and the
	// isolated malware/IP pair.
	comps := ConnectedComponents(s)
	if len(comps) != 4 {
		t.Fatalf("components: %d, want 4", len(comps))
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].Size > comps[i-1].Size {
			t.Error("components not sorted by size")
		}
	}
	if comps[0].Size < 10 {
		t.Errorf("main campaign cluster too small: %d", comps[0].Size)
	}
	total := 0
	for _, c := range comps {
		total += c.Size
	}
	if total != s.Stats().Nodes {
		t.Errorf("components cover %d nodes of %d", total, s.Stats().Nodes)
	}
}

func TestProfileActor(t *testing.T) {
	s := buildKG(t)
	p := ProfileActor(s, "AlphaGroup")
	if p == nil {
		t.Fatal("profile nil")
	}
	if len(p.Techniques) != 2 || p.Techniques[0] != "credential dumping" {
		t.Errorf("techniques: %v", p.Techniques)
	}
	if len(p.Tools) != 1 || p.Tools[0] != "Mimikatz" {
		t.Errorf("tools: %v", p.Tools)
	}
	if len(p.Malware) != 1 || p.Malware[0] != "BigThreat" {
		t.Errorf("malware: %v", p.Malware)
	}
	if len(p.Targets) != 1 || p.Targets[0] != "Exchange Server" {
		t.Errorf("targets: %v", p.Targets)
	}
	if ProfileActor(s, "NoSuchActor") != nil {
		t.Error("missing actor should be nil")
	}
}

func TestSimilarActors(t *testing.T) {
	s := buildKG(t)
	sim := SimilarActors(s, "AlphaGroup", 5)
	if len(sim) != 1 {
		t.Fatalf("similar: %+v", sim)
	}
	if sim[0].Node.Name != "BetaGroup" {
		t.Errorf("most similar: %s", sim[0].Node.Name)
	}
	// Jaccard: |{t1,t2}| / |{t1,t2,tool}| = 2/3.
	if math.Abs(sim[0].Score-2.0/3.0) > 1e-9 {
		t.Errorf("jaccard: %f", sim[0].Score)
	}
	// Gamma shares nothing: excluded.
	for _, r := range sim {
		if r.Node.Name == "GammaGroup" {
			t.Error("disjoint actor listed as similar")
		}
	}
	if got := SimilarActors(s, "NoSuchActor", 3); got != nil {
		t.Errorf("missing actor: %+v", got)
	}
}

func TestTimeline(t *testing.T) {
	s := buildKG(t)
	hub := s.FindNode("Malware", "BigThreat")
	tl := Timeline(s, hub.ID)
	if len(tl) != 3 {
		t.Fatalf("timeline buckets: %+v", tl)
	}
	for i := 1; i < len(tl); i++ {
		if tl[i-1].Period >= tl[i].Period {
			t.Error("timeline not sorted")
		}
	}
	if tl[0].Period != "2021-01" || tl[0].Count != 1 {
		t.Errorf("first bucket: %+v", tl[0])
	}
}
