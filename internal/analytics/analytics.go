// Package analytics implements the "threat analysis" application layer the
// paper lists alongside threat search and threat hunting: graph-analytic
// primitives over the security knowledge graph — importance ranking
// (PageRank), connected-component discovery (campaign clusters), threat
// actor profiling (technique/tool portfolios), and publication timelines.
package analytics

import (
	"sort"

	"securitykg/internal/graph"
	"securitykg/internal/ontology"
)

// Ranked pairs a node with a score.
type Ranked struct {
	Node  *graph.Node
	Score float64
}

// PageRank computes importance scores over the knowledge graph treating
// edges as undirected citations (a report describing a malware raises the
// malware's rank; shared infrastructure concentrates rank). damping is
// typically 0.85; iters around 20-50.
func PageRank(s *graph.Store, damping float64, iters int) map[graph.NodeID]float64 {
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if iters <= 0 {
		iters = 30
	}
	var ids []graph.NodeID
	deg := map[graph.NodeID]int{}
	adj := map[graph.NodeID][]graph.NodeID{}
	s.ForEachNode(func(n *graph.Node) bool {
		ids = append(ids, n.ID)
		return true
	})
	s.ForEachEdge(func(e *graph.Edge) bool {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
		deg[e.From]++
		deg[e.To]++
		return true
	})
	n := float64(len(ids))
	if n == 0 {
		return map[graph.NodeID]float64{}
	}
	rank := make(map[graph.NodeID]float64, len(ids))
	for _, id := range ids {
		rank[id] = 1 / n
	}
	for it := 0; it < iters; it++ {
		next := make(map[graph.NodeID]float64, len(ids))
		base := (1 - damping) / n
		var danglingMass float64
		for _, id := range ids {
			if deg[id] == 0 {
				danglingMass += rank[id]
			}
		}
		for _, id := range ids {
			next[id] = base + damping*danglingMass/n
		}
		for _, id := range ids {
			if deg[id] == 0 {
				continue
			}
			share := damping * rank[id] / float64(deg[id])
			for _, nb := range adj[id] {
				next[nb] += share
			}
		}
		rank = next
	}
	return rank
}

// TopThreats returns the k highest-PageRank nodes of the given entity
// types (nil = threat concepts), most important first.
func TopThreats(s *graph.Store, k int, types []ontology.EntityType) []Ranked {
	ranks := PageRank(s, 0.85, 30)
	want := map[string]bool{}
	for _, t := range types {
		want[string(t)] = true
	}
	var out []Ranked
	s.ForEachNode(func(n *graph.Node) bool {
		if len(want) > 0 {
			if !want[n.Type] {
				return true
			}
		} else if !ontology.IsThreatConcept(ontology.EntityType(n.Type)) {
			return true
		}
		out = append(out, Ranked{Node: n, Score: ranks[n.ID]})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node.ID < out[j].Node.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Component is one connected component of the KG.
type Component struct {
	Nodes []graph.NodeID
	Size  int
}

// ConnectedComponents finds undirected components, largest first. Isolated
// report clusters often indicate distinct campaigns.
func ConnectedComponents(s *graph.Store) []Component {
	visited := map[graph.NodeID]bool{}
	var comps []Component
	s.ForEachNode(func(n *graph.Node) bool {
		if visited[n.ID] {
			return true
		}
		var comp []graph.NodeID
		queue := []graph.NodeID{n.ID}
		visited[n.ID] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for _, nb := range s.Neighbors(cur, graph.Both) {
				if !visited[nb.ID] {
					visited[nb.ID] = true
					queue = append(queue, nb.ID)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, Component{Nodes: comp, Size: len(comp)})
		return true
	})
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].Size != comps[j].Size {
			return comps[i].Size > comps[j].Size
		}
		return comps[i].Nodes[0] < comps[j].Nodes[0]
	})
	return comps
}

// ActorProfile summarizes a threat actor's observed portfolio.
type ActorProfile struct {
	Actor      *graph.Node
	Techniques []string
	Tools      []string
	Malware    []string // attributed malware
	Targets    []string
	Reports    int
}

// ProfileActor aggregates everything the KG knows about one threat actor.
func ProfileActor(s *graph.Store, name string) *ActorProfile {
	actor := s.FindNode(string(ontology.TypeThreatActor), name)
	if actor == nil {
		return nil
	}
	p := &ActorProfile{Actor: actor}
	for _, e := range s.Edges(actor.ID, graph.Out) {
		dst := s.Node(e.To)
		if dst == nil {
			continue
		}
		switch {
		case e.Type == string(ontology.RelUses) && dst.Type == string(ontology.TypeTechnique):
			p.Techniques = append(p.Techniques, dst.Name)
		case e.Type == string(ontology.RelUses) && dst.Type == string(ontology.TypeTool):
			p.Tools = append(p.Tools, dst.Name)
		case e.Type == string(ontology.RelTargets):
			p.Targets = append(p.Targets, dst.Name)
		}
	}
	for _, e := range s.Edges(actor.ID, graph.In) {
		src := s.Node(e.From)
		if src == nil {
			continue
		}
		switch {
		case e.Type == string(ontology.RelAttributedTo) && src.Type == string(ontology.TypeMalware):
			p.Malware = append(p.Malware, src.Name)
		case e.Type == string(ontology.RelDescribes) || e.Type == string(ontology.RelMentions):
			p.Reports++
		}
	}
	sort.Strings(p.Techniques)
	sort.Strings(p.Tools)
	sort.Strings(p.Malware)
	sort.Strings(p.Targets)
	return p
}

// SimilarActors ranks other actors by Jaccard similarity of technique and
// tool portfolios — the generalized form of the demo's "other threat
// actors that use the same set of techniques" question.
func SimilarActors(s *graph.Store, name string, k int) []Ranked {
	self := ProfileActor(s, name)
	if self == nil {
		return nil
	}
	selfSet := map[string]bool{}
	for _, t := range self.Techniques {
		selfSet["T:"+t] = true
	}
	for _, t := range self.Tools {
		selfSet["L:"+t] = true
	}
	var out []Ranked
	for _, n := range s.NodesByType(string(ontology.TypeThreatActor)) {
		if n.Name == name {
			continue
		}
		other := ProfileActor(s, n.Name)
		otherSet := map[string]bool{}
		for _, t := range other.Techniques {
			otherSet["T:"+t] = true
		}
		for _, t := range other.Tools {
			otherSet["L:"+t] = true
		}
		inter, union := 0, len(selfSet)
		for x := range otherSet {
			if selfSet[x] {
				inter++
			} else {
				union++
			}
		}
		if union == 0 || inter == 0 {
			continue
		}
		out = append(out, Ranked{Node: n, Score: float64(inter) / float64(union)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node.ID < out[j].Node.ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TimelineBucket counts reports published in one period.
type TimelineBucket struct {
	Period string // YYYY-MM
	Count  int
}

// Timeline buckets the reports describing or mentioning a threat by
// publication month, oldest first — campaign activity over time.
func Timeline(s *graph.Store, threat graph.NodeID) []TimelineBucket {
	counts := map[string]int{}
	for _, e := range s.Edges(threat, graph.In) {
		if e.Type != string(ontology.RelDescribes) && e.Type != string(ontology.RelMentions) {
			continue
		}
		rep := s.Node(e.From)
		if rep == nil {
			continue
		}
		date := rep.Attrs["published_at"]
		if len(date) < 7 {
			continue
		}
		counts[date[:7]]++
	}
	out := make([]TimelineBucket, 0, len(counts))
	for p, c := range counts {
		out = append(out, TimelineBucket{Period: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Period < out[j].Period })
	return out
}
