package pipeline

import (
	"strings"
	"testing"

	"securitykg/internal/ctirep"
	"securitykg/internal/sources"
)

// parserFixture fetches report 0 of the first source matching the layout
// and ports it into a ReportRep.
func parserFixture(t *testing.T, layout sources.Layout) (*ctirep.ReportRep, *sources.Truth, sources.SourceSpec) {
	t.Helper()
	specs := sources.DefaultSources(4)
	web := sources.NewWeb(3, specs)
	for _, spec := range specs {
		if spec.Layout != layout || spec.Format != "html" {
			continue
		}
		page, err := web.Fetch(spec.BaseURL() + "/report/0")
		if err != nil {
			t.Fatal(err)
		}
		rep := (DirectPorter{}).Port(ctirep.RawFile{
			Source: spec.Slug, URL: page.URL, Format: "html", Body: page.Body,
		})[0]
		return rep, web.GenerateTruth(spec, 0), spec
	}
	t.Fatalf("no html source with layout %s", layout)
	return nil, nil, sources.SourceSpec{}
}

func TestBlogParserFields(t *testing.T) {
	rep, truth, spec := parserFixture(t, sources.LayoutBlog)
	cti, err := (BlogParser{}).Parse(rep)
	if err != nil {
		t.Fatal(err)
	}
	if cti.Vendor != spec.Vendor {
		t.Errorf("vendor %q want %q", cti.Vendor, spec.Vendor)
	}
	if cti.PublishedAt != truth.PublishedAt {
		t.Errorf("published %q want %q", cti.PublishedAt, truth.PublishedAt)
	}
	if cti.Kind != truth.Kind {
		t.Errorf("kind %q want %q", cti.Kind, truth.Kind)
	}
	if cti.Title != truth.Title {
		t.Errorf("title %q want %q", cti.Title, truth.Title)
	}
	if !strings.Contains(cti.Text, "belongs to") {
		t.Errorf("body missing: %.80s", cti.Text)
	}
}

func TestNewsParserFields(t *testing.T) {
	rep, truth, spec := parserFixture(t, sources.LayoutNews)
	cti, err := (NewsParser{}).Parse(rep)
	if err != nil {
		t.Fatal(err)
	}
	if cti.Vendor != spec.Vendor || cti.Kind != truth.Kind || cti.Title != truth.Title {
		t.Errorf("news fields: vendor=%q kind=%q title=%q", cti.Vendor, cti.Kind, cti.Title)
	}
}

func TestParserForSelection(t *testing.T) {
	specs := sources.DefaultSources(1)
	seen := map[string]bool{}
	for _, spec := range specs {
		p := ParserFor(spec)
		seen[p.Name()] = true
		if spec.Format == "pdf" && p.Name() != "pdf" {
			t.Errorf("pdf source %s got parser %s", spec.Slug, p.Name())
		}
	}
	for _, want := range []string{"encyclopedia", "blog", "news", "pdf"} {
		if !seen[want] {
			t.Errorf("no source selects the %s parser", want)
		}
	}
}

func TestParsersRejectEmptyBodies(t *testing.T) {
	empty := &ctirep.ReportRep{
		ID: "x", Source: "s", URL: "u", Format: "html",
		Pages: [][]byte{[]byte("<html><body></body></html>")},
	}
	for _, p := range []Parser{EncyclopediaParser{}, BlogParser{}, NewsParser{}} {
		if _, err := p.Parse(empty); err == nil {
			t.Errorf("%s accepted empty body", p.Name())
		}
	}
	if _, err := (PDFParser{}).Parse(&ctirep.ReportRep{
		ID: "x", Source: "s", URL: "u", Format: "pdf",
		Pages: [][]byte{[]byte("not a pdf")},
	}); err == nil {
		t.Error("pdf parser accepted garbage")
	}
}

func TestScanTitle(t *testing.T) {
	cases := map[string]string{
		`<html><head><title>Hello &amp; World</title></head></html>`: "Hello & World",
		`<HTML><TITLE foo="bar">Caps</TITLE></HTML>`:                 "Caps",
		`<html><body>no title</body></html>`:                         "",
		`<title>unterminated`:                                        "",
		``:                                                           "",
	}
	for in, want := range cases {
		if got := scanTitle([]byte(in)); got != want {
			t.Errorf("scanTitle(%q) = %q, want %q", in, got, want)
		}
	}
}
