package pipeline

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"securitykg/internal/connector"
	"securitykg/internal/crawler"
	"securitykg/internal/ctirep"
	"securitykg/internal/graph"
	"securitykg/internal/ner"
	"securitykg/internal/ontology"
	"securitykg/internal/relstore"
	"securitykg/internal/search"
	"securitykg/internal/sources"
)

// trained NER shared across tests (training is the slow part).
var (
	nerOnce sync.Once
	nerExt  *ner.Extractor
)

func sharedNER(t *testing.T) *ner.Extractor {
	t.Helper()
	nerOnce.Do(func() {
		web := sources.NewWeb(7, sources.DefaultSources(6))
		var texts []string
		for _, spec := range web.Sources()[:12] {
			for i := 0; i < 6; i++ {
				truth := web.GenerateTruth(spec, i)
				texts = append(texts, strings.Join(truth.Paragraphs, "\n"))
			}
		}
		ext, err := ner.Train(texts, ner.TrainOptions{Epochs: 4, Seed: 1})
		if err != nil {
			panic(err)
		}
		nerExt = ext
	})
	return nerExt
}

// crawlFiles collects raw files from a small synthetic web.
func crawlFiles(t *testing.T, web *sources.Web, specs []sources.SourceSpec) []ctirep.RawFile {
	t.Helper()
	fw := crawler.New(web, specs, crawler.Config{Workers: 4})
	var mu sync.Mutex
	var out []ctirep.RawFile
	if err := fw.RunOnce(context.Background(), func(rf ctirep.RawFile) {
		mu.Lock()
		out = append(out, rf)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func feed(files []ctirep.RawFile) <-chan ctirep.RawFile {
	ch := make(chan ctirep.RawFile, len(files))
	for _, f := range files {
		ch <- f
	}
	close(ch)
	return ch
}

func newPipeline(t *testing.T, specs []sources.SourceSpec, store *graph.Store, idx *search.Index, serialize bool) *Pipeline {
	t.Helper()
	ext := sharedNER(t)
	return &Pipeline{
		Porter:   NewGroupingPorter(),
		Checkers: []Checker{NonemptyChecker{}, NotAdsChecker{}},
		Parsers:  DefaultParsers(specs),
		Extractors: []Extractor{
			EntityExtractor{NER: ext},
			RelationExtractor{NER: ext},
		},
		Connectors: []connector.Connector{connector.NewGraphConnector(store, idx)},
		Cfg:        Config{Serialize: serialize},
	}
}

func TestEndToEndCrawlProcessStore(t *testing.T) {
	specs := sources.DefaultSources(8)[:4]
	web := sources.NewWeb(11, specs)
	files := crawlFiles(t, web, specs)
	store := graph.New()
	idx := search.NewIndex(map[string]float64{"title": 2})
	p := newPipeline(t, specs, store, idx, true)
	st, err := p.Run(context.Background(), feed(files))
	if err != nil {
		t.Fatal(err)
	}
	if st.Connected != 4*8 {
		t.Fatalf("connected %d reports, want 32 (stats %+v)", st.Connected, st)
	}
	gs := store.Stats()
	if gs.Nodes < 100 || gs.Edges < 150 {
		t.Errorf("graph too small: %+v", gs)
	}
	// Reports present with the right types.
	reports := 0
	for _, tn := range []string{"MalwareReport", "VulnerabilityReport", "AttackReport"} {
		reports += gs.NodesByType[tn]
	}
	if reports != 32 {
		t.Errorf("report nodes: %d, want 32", reports)
	}
	// Vendor attribution edges exist.
	if gs.EdgesByType[string(ontology.RelReportedBy)] != 32 {
		t.Errorf("REPORTED_BY edges: %d", gs.EdgesByType[string(ontology.RelReportedBy)])
	}
	// Full-text index covers every report.
	if idx.Len() != 32 {
		t.Errorf("search index: %d docs", idx.Len())
	}
	if st.Elapsed <= 0 || st.ReportsPerMinute() <= 0 {
		t.Errorf("throughput metrics missing: %+v", st)
	}
}

func TestPipelineRecallAgainstGroundTruth(t *testing.T) {
	specs := sources.DefaultSources(10)[:2]
	web := sources.NewWeb(13, specs)
	files := crawlFiles(t, web, specs)
	store := graph.New()
	p := newPipeline(t, specs, store, nil, false)
	if _, err := p.Run(context.Background(), feed(files)); err != nil {
		t.Fatal(err)
	}
	// Spot-check: the main malware of every report must be a node, and at
	// least half of the ground-truth relations must exist as edges.
	totalRel, foundRel := 0, 0
	for _, spec := range specs {
		for i := 0; i < spec.Reports; i++ {
			truth := web.GenerateTruth(spec, i)
			for _, r := range truth.Relations {
				totalRel++
				src := store.FindNode(string(r.Src.Type), r.Src.Name)
				dst := store.FindNode(string(r.Dst.Type), r.Dst.Name)
				if src == nil || dst == nil {
					continue
				}
				for _, e := range store.Edges(src.ID, graph.Out) {
					if e.To == dst.ID && e.Type == string(r.Type) {
						foundRel++
						break
					}
				}
			}
		}
	}
	recall := float64(foundRel) / float64(totalRel)
	if recall < 0.4 {
		t.Errorf("relation recall %.3f (%d/%d), want >= 0.4", recall, foundRel, totalRel)
	}
}

func TestCheckersRejectAdsAndEmpty(t *testing.T) {
	ad := &ctirep.ReportRep{
		Title:  "Sponsored: Limited offer",
		Format: "html",
		Pages:  [][]byte{[]byte(`<html><body>Buy now! Discount! Click here to subscribe and win a prize.</body></html>`)},
	}
	if (NotAdsChecker{}).Check(ad) {
		t.Error("ad page passed not-ads checker")
	}
	empty := &ctirep.ReportRep{
		Format: "html",
		Pages:  [][]byte{[]byte("<html><body>   </body></html>")},
	}
	if (NonemptyChecker{}).Check(empty) {
		t.Error("empty page passed nonempty checker")
	}
	good := &ctirep.ReportRep{
		Title:  "Real analysis",
		Format: "html",
		Pages:  [][]byte{[]byte("<html><body><p>The malware connects out.</p></body></html>")},
	}
	if !(NonemptyChecker{}).Check(good) || !(NotAdsChecker{}).Check(good) {
		t.Error("real report rejected")
	}
}

func TestGroupingPorterJoinsPages(t *testing.T) {
	g := NewGroupingPorter()
	page1 := ctirep.RawFile{
		Source: "src", URL: "https://src.osint.test/report/3", Format: "html",
		Body: []byte(`<html><body><p>part one</p><a class="next-page" href="https://src.osint.test/report/3/2">next</a></body></html>`),
	}
	page2 := ctirep.RawFile{
		Source: "src", URL: "https://src.osint.test/report/3/2", Format: "html",
		Body: []byte(`<html><body><p>part two</p></body></html>`),
	}
	if got := g.Port(page1); got != nil {
		t.Fatalf("page 1 should be held: %+v", got)
	}
	reps := g.Port(page2)
	if len(reps) != 1 {
		t.Fatalf("page 2 should complete the report: %+v", reps)
	}
	rep := reps[0]
	if len(rep.Pages) != 2 {
		t.Fatalf("pages: %d", len(rep.Pages))
	}
	if rep.URL != page1.URL {
		t.Errorf("canonical URL should be page 1's: %s", rep.URL)
	}
	if got := g.Flush(); len(got) != 0 {
		t.Errorf("flush after completion: %+v", got)
	}
}

func TestGroupingPorterFlushEmitsPartials(t *testing.T) {
	g := NewGroupingPorter()
	page1 := ctirep.RawFile{
		Source: "src", URL: "u1", Format: "html",
		Body: []byte(`<html><body>x<a class="next-page" href="u2">next</a></body></html>`),
	}
	if got := g.Port(page1); got != nil {
		t.Fatal("held page emitted early")
	}
	flushed := g.Flush()
	if len(flushed) != 1 || len(flushed[0].Pages) != 1 {
		t.Fatalf("flush should emit the partial: %+v", flushed)
	}
}

func TestParsersExtractStructuredFields(t *testing.T) {
	specs := sources.DefaultSources(4)
	web := sources.NewWeb(5, specs)
	for _, spec := range specs[:1] { // encyclopedia layout
		page, err := web.Fetch(spec.BaseURL() + "/report/0")
		if err != nil {
			t.Fatal(err)
		}
		rep := (DirectPorter{}).Port(ctirep.RawFile{
			Source: spec.Slug, URL: page.URL, Format: "html", Body: page.Body,
		})[0]
		cti, err := (EncyclopediaParser{}).Parse(rep)
		if err != nil {
			t.Fatal(err)
		}
		truth := web.GenerateTruth(spec, 0)
		if cti.Vendor != spec.Vendor {
			t.Errorf("vendor: %q want %q", cti.Vendor, spec.Vendor)
		}
		if cti.PublishedAt != truth.PublishedAt {
			t.Errorf("published: %q want %q", cti.PublishedAt, truth.PublishedAt)
		}
		if cti.Kind != truth.Kind {
			t.Errorf("kind: %q want %q", cti.Kind, truth.Kind)
		}
		if cti.Title != truth.Title {
			t.Errorf("title: %q want %q", cti.Title, truth.Title)
		}
		if !strings.Contains(cti.Text, "belongs to") {
			t.Errorf("body text missing: %q", cti.Text[:80])
		}
	}
}

func TestPDFParserRoundTrip(t *testing.T) {
	specs := sources.DefaultSources(4)
	var pdfSpec sources.SourceSpec
	for _, s := range specs {
		if s.Format == "pdf" {
			pdfSpec = s
			break
		}
	}
	web := sources.NewWeb(5, specs)
	page, err := web.Fetch(pdfSpec.BaseURL() + "/report/2")
	if err != nil {
		t.Fatal(err)
	}
	rep := (DirectPorter{}).Port(ctirep.RawFile{
		Source: pdfSpec.Slug, URL: page.URL, Format: "pdf", Body: page.Body,
	})[0]
	cti, err := (PDFParser{}).Parse(rep)
	if err != nil {
		t.Fatal(err)
	}
	truth := web.GenerateTruth(pdfSpec, 2)
	if cti.Vendor != pdfSpec.Vendor || cti.Kind != truth.Kind {
		t.Errorf("pdf header fields: vendor=%q kind=%q", cti.Vendor, cti.Kind)
	}
	if len(cti.Text) < 100 {
		t.Errorf("pdf body too short: %d", len(cti.Text))
	}
}

func TestSerializationToggleEquivalence(t *testing.T) {
	specs := sources.DefaultSources(5)[:2]
	web := sources.NewWeb(17, specs)
	files := crawlFiles(t, web, specs)

	run := func(serialize bool) graph.Stats {
		store := graph.New()
		p := newPipeline(t, specs, store, nil, serialize)
		if _, err := p.Run(context.Background(), feed(files)); err != nil {
			t.Fatal(err)
		}
		return store.Stats()
	}
	a := run(false)
	b := run(true)
	if a.Nodes != b.Nodes || a.Edges != b.Edges {
		t.Errorf("serialization changed results: %+v vs %+v", a, b)
	}
}

func TestMultipleConnectorsReceiveEverything(t *testing.T) {
	specs := sources.DefaultSources(4)[:1]
	web := sources.NewWeb(19, specs)
	files := crawlFiles(t, web, specs)
	store := graph.New()
	rstore := relstore.New()
	rc, err := connector.NewRelConnector(rstore)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	p := newPipeline(t, specs, store, nil, false)
	p.Connectors = append(p.Connectors, rc, connector.NewLogConnector(&logBuf))
	st, err := p.Run(context.Background(), feed(files))
	if err != nil {
		t.Fatal(err)
	}
	if rc.Connected() != int(st.Connected) {
		t.Errorf("relational connector saw %d, pipeline connected %d", rc.Connected(), st.Connected)
	}
	if n, _ := rstore.Count(connector.TableReports); n != int(st.Connected) {
		t.Errorf("reports table rows: %d", n)
	}
	if logLines := bytes.Count(logBuf.Bytes(), []byte("\n")); logLines != int(st.Connected) {
		t.Errorf("log lines: %d", logLines)
	}
	if mentions, _ := rstore.Count(connector.TableMentions); mentions == 0 {
		t.Error("no mentions stored relationally")
	}
}

func TestPipelineIncrementalIngestGrowsGraph(t *testing.T) {
	// The paper: the KG "can continuously grow" as new reports arrive.
	specs := sources.DefaultSources(6)[:1]
	web := sources.NewWeb(23, specs)
	files := crawlFiles(t, web, specs)
	store := graph.New()
	p := newPipeline(t, specs, store, nil, false)
	if _, err := p.Run(context.Background(), feed(files[:3])); err != nil {
		t.Fatal(err)
	}
	before := store.Stats()
	p2 := newPipeline(t, specs, store, nil, false)
	if _, err := p2.Run(context.Background(), feed(files[3:])); err != nil {
		t.Fatal(err)
	}
	after := store.Stats()
	if after.Nodes <= before.Nodes {
		t.Errorf("graph did not grow: %+v -> %+v", before, after)
	}
	// Re-ingesting the same files must not duplicate report nodes.
	p3 := newPipeline(t, specs, store, nil, false)
	if _, err := p3.Run(context.Background(), feed(files)); err != nil {
		t.Fatal(err)
	}
	again := store.Stats()
	if again.Nodes != after.Nodes {
		t.Errorf("re-ingest duplicated nodes: %d -> %d", after.Nodes, again.Nodes)
	}
}

func TestPipelineContextCancellation(t *testing.T) {
	specs := sources.DefaultSources(30)[:4]
	web := sources.NewWeb(29, specs)
	files := crawlFiles(t, web, specs)
	store := graph.New()
	p := newPipeline(t, specs, store, nil, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before start: should stop promptly with error
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Run(ctx, feed(files)); err == nil {
			t.Log("run finished despite cancellation (allowed if fast)")
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline hung on cancellation")
	}
}

func TestStatsRejectionCounting(t *testing.T) {
	// Feed one ad page and one real report through the stages.
	specs := sources.DefaultSources(4)[:1]
	web := sources.NewWeb(31, specs)
	spec := specs[0]
	adPage, err := web.Fetch(spec.BaseURL() + "/ad/0")
	if err != nil {
		t.Fatal(err)
	}
	realPage, err := web.Fetch(spec.BaseURL() + "/report/0")
	if err != nil {
		t.Fatal(err)
	}
	files := []ctirep.RawFile{
		{Source: spec.Slug, URL: adPage.URL, Format: "html", Body: adPage.Body},
		{Source: spec.Slug, URL: realPage.URL, Format: "html", Body: realPage.Body},
	}
	store := graph.New()
	p := newPipeline(t, specs, store, nil, false)
	st, err := p.Run(context.Background(), feed(files))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 {
		t.Errorf("rejected %d, want 1 (the ad)", st.Rejected)
	}
	if st.Connected != 1 {
		t.Errorf("connected %d, want 1", st.Connected)
	}
}
