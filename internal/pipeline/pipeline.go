package pipeline

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"securitykg/internal/connector"
	"securitykg/internal/ctirep"
)

// Config sets per-stage worker counts and the hand-off mode.
type Config struct {
	PortWorkers    int // porter stage (default 1; grouping state is shared)
	CheckWorkers   int // checker stage (default 2)
	ParseWorkers   int // parser stage (default 2)
	ExtractWorkers int // extractor stage (default 4; NLP is the bottleneck)
	ConnectWorkers int // connector stage (default 2)
	// Serialize encodes/decodes the intermediate representations between
	// stages, exactly as a multi-host deployment would. Off by default in
	//-process; E3 measures the cost.
	Serialize bool
	// QueueDepth is the channel buffer between stages (default 64).
	QueueDepth int
	// Logger receives per-report errors; nil silences them.
	Logger *log.Logger
}

func (c *Config) defaults() {
	if c.PortWorkers <= 0 {
		c.PortWorkers = 1
	}
	if c.CheckWorkers <= 0 {
		c.CheckWorkers = 2
	}
	if c.ParseWorkers <= 0 {
		c.ParseWorkers = 2
	}
	if c.ExtractWorkers <= 0 {
		c.ExtractWorkers = 4
	}
	if c.ConnectWorkers <= 0 {
		c.ConnectWorkers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
}

// Stats aggregates pipeline counters for one run.
type Stats struct {
	Ported      int64
	Rejected    int64 // dropped by checkers
	Parsed      int64
	ParseErrs   int64
	Extracted   int64
	Connected   int64
	ConnectErrs int64
	Elapsed     time.Duration
}

// ReportsPerMinute is the end-to-end processing throughput.
func (s Stats) ReportsPerMinute() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Connected) / s.Elapsed.Minutes()
}

// Pipeline wires the processing stages. Parsers are selected per source
// slug; every checker must pass; extractors run in order; every connector
// receives every rep.
type Pipeline struct {
	Porter     Porter
	Checkers   []Checker
	Parsers    map[string]Parser // source slug -> parser
	Extractors []Extractor
	Connectors []connector.Connector
	Cfg        Config

	ported      atomic.Int64
	rejected    atomic.Int64
	parsed      atomic.Int64
	parseErrs   atomic.Int64
	extracted   atomic.Int64
	connected   atomic.Int64
	connectErrs atomic.Int64
}

// Stats snapshots the counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Ported:      p.ported.Load(),
		Rejected:    p.rejected.Load(),
		Parsed:      p.parsed.Load(),
		ParseErrs:   p.parseErrs.Load(),
		Extracted:   p.extracted.Load(),
		Connected:   p.connected.Load(),
		ConnectErrs: p.connectErrs.Load(),
	}
}

func (p *Pipeline) logf(format string, args ...any) {
	if p.Cfg.Logger != nil {
		p.Cfg.Logger.Printf(format, args...)
	}
}

// Run drains the raw-file channel through all stages and returns the run's
// stats once every stage has finished.
func (p *Pipeline) Run(ctx context.Context, files <-chan ctirep.RawFile) (Stats, error) {
	p.Cfg.defaults()
	if p.Porter == nil {
		p.Porter = NewGroupingPorter()
	}
	start := time.Now()

	repCh := make(chan *ctirep.ReportRep, p.Cfg.QueueDepth)
	checkedCh := make(chan *ctirep.ReportRep, p.Cfg.QueueDepth)
	ctiCh := make(chan *ctirep.CTIRep, p.Cfg.QueueDepth)
	extractedCh := make(chan *ctirep.CTIRep, p.Cfg.QueueDepth)

	var wgPort, wgCheck, wgParse, wgExtract, wgConnect sync.WaitGroup

	// Stage 1: porter. Grouping state is shared, so porting runs on one
	// goroutine regardless of PortWorkers; porting is cheap.
	var porterMu sync.Mutex
	wgPort.Add(1)
	go func() {
		defer wgPort.Done()
		defer close(repCh)
		emit := func(rep *ctirep.ReportRep) bool {
			rep2, err := p.reserializeRep(rep)
			if err != nil {
				p.logf("pipeline: serialize rep %s: %v", rep.ID, err)
				return true
			}
			p.ported.Add(1)
			select {
			case repCh <- rep2:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for f := range files {
			porterMu.Lock()
			reps := p.Porter.Port(f)
			porterMu.Unlock()
			for _, rep := range reps {
				if !emit(rep) {
					return
				}
			}
			if ctx.Err() != nil {
				return
			}
		}
		porterMu.Lock()
		reps := p.Porter.Flush()
		porterMu.Unlock()
		for _, rep := range reps {
			if !emit(rep) {
				return
			}
		}
	}()

	// Stage 2: checkers.
	for i := 0; i < p.Cfg.CheckWorkers; i++ {
		wgCheck.Add(1)
		go func() {
			defer wgCheck.Done()
			for rep := range repCh {
				ok := true
				for _, ch := range p.Checkers {
					if !ch.Check(rep) {
						ok = false
						p.rejected.Add(1)
						break
					}
				}
				if !ok {
					continue
				}
				select {
				case checkedCh <- rep:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wgCheck.Wait(); close(checkedCh) }()

	// Stage 3: source-dependent parsers.
	for i := 0; i < p.Cfg.ParseWorkers; i++ {
		wgParse.Add(1)
		go func() {
			defer wgParse.Done()
			for rep := range checkedCh {
				parser, ok := p.Parsers[rep.Source]
				if !ok {
					p.parseErrs.Add(1)
					p.logf("pipeline: no parser for source %q", rep.Source)
					continue
				}
				cti, err := parser.Parse(rep)
				if err != nil {
					p.parseErrs.Add(1)
					p.logf("pipeline: parse %s: %v", rep.URL, err)
					continue
				}
				cti2, err := p.reserializeCTI(cti)
				if err != nil {
					p.parseErrs.Add(1)
					continue
				}
				p.parsed.Add(1)
				select {
				case ctiCh <- cti2:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wgParse.Wait(); close(ctiCh) }()

	// Stage 4: source-independent extractors.
	for i := 0; i < p.Cfg.ExtractWorkers; i++ {
		wgExtract.Add(1)
		go func() {
			defer wgExtract.Done()
			for cti := range ctiCh {
				for _, ex := range p.Extractors {
					if err := ex.Extract(cti); err != nil {
						p.logf("pipeline: extract %s (%s): %v", cti.ReportID, ex.Name(), err)
					}
				}
				cti2, err := p.reserializeCTI(cti)
				if err != nil {
					continue
				}
				p.extracted.Add(1)
				select {
				case extractedCh <- cti2:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wgExtract.Wait(); close(extractedCh) }()

	// Stage 5: connectors.
	for i := 0; i < p.Cfg.ConnectWorkers; i++ {
		wgConnect.Add(1)
		go func() {
			defer wgConnect.Done()
			for cti := range extractedCh {
				failed := false
				for _, conn := range p.Connectors {
					if err := conn.Connect(cti); err != nil {
						failed = true
						p.connectErrs.Add(1)
						p.logf("pipeline: connect %s (%s): %v", cti.ReportID, conn.Name(), err)
					}
				}
				if !failed {
					p.connected.Add(1)
				}
			}
		}()
	}

	wgPort.Wait()
	wgConnect.Wait()
	st := p.Stats()
	st.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return st, fmt.Errorf("pipeline: cancelled: %w", err)
	}
	return st, nil
}

// reserializeRep round-trips the report rep through its wire format when
// Serialize is on, proving stage decoupling.
func (p *Pipeline) reserializeRep(rep *ctirep.ReportRep) (*ctirep.ReportRep, error) {
	if !p.Cfg.Serialize {
		return rep, nil
	}
	b, err := ctirep.EncodeReportRep(rep)
	if err != nil {
		return nil, err
	}
	return ctirep.DecodeReportRep(b)
}

func (p *Pipeline) reserializeCTI(cti *ctirep.CTIRep) (*ctirep.CTIRep, error) {
	if !p.Cfg.Serialize {
		return cti, nil
	}
	b, err := ctirep.EncodeCTIRep(cti)
	if err != nil {
		return nil, err
	}
	return ctirep.DecodeCTIRep(b)
}
