// Package pipeline implements SecurityKG's processing backbone: the
// porter → checker → parser → extractor → connector stages (Figure 1),
// each running on its own worker pool with serializable intermediate
// representations handed between stages. Serialization can be toggled to
// measure its cost (the design enables multi-host deployment; E3 ablates
// the overhead).
package pipeline

import (
	"fmt"
	"strings"

	"securitykg/internal/ctirep"
	"securitykg/internal/htmlparse"
	"securitykg/internal/ner"
	"securitykg/internal/ontology"
	"securitykg/internal/pdf"
	"securitykg/internal/sources"
)

// --- porters ---

// Porter converts raw crawled files into intermediate report
// representations, grouping multi-page reports and attaching metadata.
type Porter interface {
	// Port consumes one raw file and returns zero or more completed
	// report representations (zero while pages are pending).
	Port(f ctirep.RawFile) []*ctirep.ReportRep
	// Flush returns any reports still pending at end of stream.
	Flush() []*ctirep.ReportRep
}

// DirectPorter emits one report representation per raw file.
type DirectPorter struct{}

// Port implements Porter.
func (DirectPorter) Port(f ctirep.RawFile) []*ctirep.ReportRep {
	return []*ctirep.ReportRep{makeRep(f.Source, f.URL, f)}
}

// Flush implements Porter.
func (DirectPorter) Flush() []*ctirep.ReportRep { return nil }

func makeRep(source, canonicalURL string, f ctirep.RawFile) *ctirep.ReportRep {
	title := ""
	if f.Format == "html" {
		// The porter runs serially (grouping state); a cheap scan for the
		// title keeps it off the pipeline's critical path — full parsing
		// happens in the parallel parser stage.
		title = scanTitle(f.Body)
	}
	return &ctirep.ReportRep{
		ID:        ctirep.NewID(source, canonicalURL),
		Source:    source,
		URL:       canonicalURL,
		Title:     title,
		Format:    f.Format,
		Pages:     [][]byte{f.Body},
		Meta:      map[string]string{"fetched_url": f.URL},
		FetchedAt: f.FetchedAt,
	}
}

// scanTitle extracts the <title> text without building a DOM.
func scanTitle(body []byte) string {
	s := string(body)
	lower := strings.ToLower(s)
	i := strings.Index(lower, "<title")
	if i < 0 {
		return ""
	}
	gt := strings.IndexByte(s[i:], '>')
	if gt < 0 {
		return ""
	}
	start := i + gt + 1
	end := strings.Index(lower[start:], "</title")
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(htmlparse.DecodeEntities(s[start : start+end]))
}

// GroupingPorter groups multi-page HTML reports: a page whose body links
// to a continuation (a.next-page) is held until the continuation arrives,
// then both pages are emitted as one report representation.
type GroupingPorter struct {
	// pending maps the awaited continuation URL to the partial report.
	pending map[string]*ctirep.ReportRep
}

// NewGroupingPorter builds the porter.
func NewGroupingPorter() *GroupingPorter {
	return &GroupingPorter{pending: make(map[string]*ctirep.ReportRep)}
}

// Port implements Porter.
func (g *GroupingPorter) Port(f ctirep.RawFile) []*ctirep.ReportRep {
	// Is this file a continuation someone is waiting for?
	if rep, ok := g.pending[f.URL]; ok {
		delete(g.pending, f.URL)
		rep.Pages = append(rep.Pages, f.Body)
		if next := nextPageURL(f); next != "" {
			g.pending[next] = rep
			return nil
		}
		return []*ctirep.ReportRep{rep}
	}
	rep := makeRep(f.Source, f.URL, f)
	if next := nextPageURL(f); next != "" {
		g.pending[next] = rep
		return nil
	}
	return []*ctirep.ReportRep{rep}
}

// Flush implements Porter: partial reports are emitted with the pages
// collected so far (never silently dropped).
func (g *GroupingPorter) Flush() []*ctirep.ReportRep {
	out := make([]*ctirep.ReportRep, 0, len(g.pending))
	for _, rep := range g.pending {
		out = append(out, rep)
	}
	g.pending = make(map[string]*ctirep.ReportRep)
	return out
}

func nextPageURL(f ctirep.RawFile) string {
	if f.Format != "html" {
		return ""
	}
	// Fast reject: most pages have no continuation link; only parse the
	// few that mention one (the porter stage is serial).
	if !strings.Contains(string(f.Body), "next-page") {
		return ""
	}
	doc := htmlparse.Parse(string(f.Body))
	if a := doc.Find("a.next-page"); a != nil {
		if href, ok := a.Attr("href"); ok {
			return href
		}
	}
	return ""
}

// --- checkers ---

// Checker screens intermediate report representations; reports failing
// any checker are dropped before parsing.
type Checker interface {
	Name() string
	Check(r *ctirep.ReportRep) bool
}

// NonemptyChecker rejects reports whose pages carry no visible text.
type NonemptyChecker struct{}

// Name implements Checker.
func (NonemptyChecker) Name() string { return "nonempty" }

// Check implements Checker.
func (NonemptyChecker) Check(r *ctirep.ReportRep) bool {
	for _, page := range r.Pages {
		var text string
		if r.Format == "pdf" {
			t, err := pdf.ExtractText(page)
			if err == nil {
				text = t
			}
		} else {
			text = htmlparse.Parse(string(page)).InnerText()
		}
		if strings.TrimSpace(text) != "" {
			return true
		}
	}
	return false
}

// NotAdsChecker rejects sponsored/advertisement pages by title markers and
// promotional vocabulary density.
type NotAdsChecker struct{}

// Name implements Checker.
func (NotAdsChecker) Name() string { return "not-ads" }

var adMarkers = []string{"sponsored", "advertisement", "buy now", "subscribe",
	"limited offer", "discount", "win a prize", "click here"}

// Check implements Checker.
func (NotAdsChecker) Check(r *ctirep.ReportRep) bool {
	title := strings.ToLower(r.Title)
	for _, m := range adMarkers[:2] {
		if strings.Contains(title, m) {
			return false
		}
	}
	if len(r.Pages) == 0 {
		return false
	}
	body := strings.ToLower(htmlparse.Parse(string(r.Pages[0])).InnerText())
	hits := 0
	for _, m := range adMarkers {
		if strings.Contains(body, m) {
			hits++
		}
	}
	// Short, promo-dense pages are ads.
	return !(hits >= 3 && len(body) < 600)
}

// --- parsers ---

// Parser converts a report representation into the intermediate CTI
// representation. Parsers are source-dependent: each knows its site's
// structure.
type Parser interface {
	Name() string
	Parse(r *ctirep.ReportRep) (*ctirep.CTIRep, error)
}

// DefaultParsers builds the per-source parser registry for the specs.
func DefaultParsers(specs []sources.SourceSpec) map[string]Parser {
	out := make(map[string]Parser, len(specs))
	for _, s := range specs {
		out[s.Slug] = ParserFor(s)
	}
	return out
}

// ParserFor returns the right parser for a source spec.
func ParserFor(spec sources.SourceSpec) Parser {
	if spec.Format == "pdf" {
		return PDFParser{}
	}
	switch spec.Layout {
	case sources.LayoutEncyclopedia:
		return EncyclopediaParser{}
	case sources.LayoutNews:
		return NewsParser{}
	default:
		return BlogParser{}
	}
}

func baseCTI(r *ctirep.ReportRep) *ctirep.CTIRep {
	return &ctirep.CTIRep{
		ReportID: r.ID,
		Source:   r.Source,
		URL:      r.URL,
		Title:    r.Title,
		Fields:   map[string]string{},
	}
}

// EncyclopediaParser reads the threat-encyclopedia layout: h1.entry-title,
// a key/value meta table, and div.body paragraphs.
type EncyclopediaParser struct{}

// Name implements Parser.
func (EncyclopediaParser) Name() string { return "encyclopedia" }

// Parse implements Parser.
func (EncyclopediaParser) Parse(r *ctirep.ReportRep) (*ctirep.CTIRep, error) {
	c := baseCTI(r)
	var bodies []string
	for _, page := range r.Pages {
		doc := htmlparse.Parse(string(page))
		if h := doc.Find("h1.entry-title"); h != nil {
			c.Title = h.InnerText()
		}
		keys := doc.FindAll("table.meta td.key")
		vals := doc.FindAll("table.meta td.val")
		for i := range keys {
			if i < len(vals) {
				c.Fields[strings.ToLower(keys[i].InnerText())] = vals[i].InnerText()
			}
		}
		if b := doc.Find("div.body"); b != nil {
			bodies = append(bodies, b.InnerText())
		}
	}
	c.Vendor = c.Fields["vendor"]
	c.PublishedAt = c.Fields["published"]
	c.Kind = c.Fields["kind"]
	if c.Kind == "" {
		c.Kind = "malware"
	}
	c.Text = strings.Join(bodies, "\n")
	if strings.TrimSpace(c.Text) == "" {
		return nil, fmt.Errorf("pipeline: encyclopedia parser: empty body for %s", r.URL)
	}
	return c, nil
}

// BlogParser reads the blog layout: h1.post-title, div.byline
// ("By VENDOR on DATE · KIND"), article.post-body.
type BlogParser struct{}

// Name implements Parser.
func (BlogParser) Name() string { return "blog" }

// Parse implements Parser.
func (BlogParser) Parse(r *ctirep.ReportRep) (*ctirep.CTIRep, error) {
	c := baseCTI(r)
	var bodies []string
	for _, page := range r.Pages {
		doc := htmlparse.Parse(string(page))
		if h := doc.Find("h1.post-title"); h != nil {
			c.Title = h.InnerText()
		}
		if by := doc.Find("div.byline"); by != nil {
			parseByline(by, c)
		}
		if b := doc.Find("article.post-body"); b != nil {
			bodies = append(bodies, b.InnerText())
		}
	}
	c.Text = strings.Join(bodies, "\n")
	if strings.TrimSpace(c.Text) == "" {
		return nil, fmt.Errorf("pipeline: blog parser: empty body for %s", r.URL)
	}
	if c.Kind == "" {
		c.Kind = "attack"
	}
	return c, nil
}

func parseByline(by *htmlparse.Node, c *ctirep.CTIRep) {
	text := by.InnerText()
	if d := by.Find("span.date"); d != nil {
		c.PublishedAt = d.InnerText()
	}
	if k := by.Find("span.kind"); k != nil {
		c.Kind = k.InnerText()
	}
	if i := strings.Index(text, "By "); i >= 0 {
		rest := text[i+3:]
		if j := strings.Index(rest, " on "); j > 0 {
			c.Vendor = strings.TrimSpace(rest[:j])
		}
	}
}

// NewsParser reads the news layout: h1.headline, div.meta data attributes,
// div.story paragraphs.
type NewsParser struct{}

// Name implements Parser.
func (NewsParser) Name() string { return "news" }

// Parse implements Parser.
func (NewsParser) Parse(r *ctirep.ReportRep) (*ctirep.CTIRep, error) {
	c := baseCTI(r)
	var bodies []string
	for _, page := range r.Pages {
		doc := htmlparse.Parse(string(page))
		if h := doc.Find("h1.headline"); h != nil {
			c.Title = h.InnerText()
		}
		if m := doc.Find("div.meta"); m != nil {
			if v, ok := m.Attr("data-vendor"); ok {
				c.Vendor = v
			}
			if v, ok := m.Attr("data-date"); ok {
				c.PublishedAt = v
			}
			if v, ok := m.Attr("data-kind"); ok {
				c.Kind = v
			}
		}
		if b := doc.Find("div.story"); b != nil {
			bodies = append(bodies, b.InnerText())
		}
	}
	c.Text = strings.Join(bodies, "\n")
	if strings.TrimSpace(c.Text) == "" {
		return nil, fmt.Errorf("pipeline: news parser: empty body for %s", r.URL)
	}
	if c.Kind == "" {
		c.Kind = "attack"
	}
	return c, nil
}

// PDFParser reads PDF reports: line 1 title, "Vendor:"/"Published:"/
// "Kind:" header lines, remainder body.
type PDFParser struct{}

// Name implements Parser.
func (PDFParser) Name() string { return "pdf" }

// Parse implements Parser.
func (PDFParser) Parse(r *ctirep.ReportRep) (*ctirep.CTIRep, error) {
	c := baseCTI(r)
	var bodies []string
	for pi, page := range r.Pages {
		text, err := pdf.ExtractText(page)
		if err != nil {
			return nil, fmt.Errorf("pipeline: pdf parser: %s: %w", r.URL, err)
		}
		lines := strings.Split(text, "\n")
		bodyStart := 0
		if pi == 0 {
			for li, line := range lines {
				line = strings.TrimSpace(line)
				switch {
				case li == 0 && line != "":
					c.Title = line
				case strings.HasPrefix(line, "Vendor: "):
					c.Vendor = strings.TrimPrefix(line, "Vendor: ")
				case strings.HasPrefix(line, "Published: "):
					c.PublishedAt = strings.TrimPrefix(line, "Published: ")
				case strings.HasPrefix(line, "Kind: "):
					c.Kind = strings.TrimPrefix(line, "Kind: ")
					bodyStart = li + 1
				}
				if bodyStart > 0 {
					break
				}
			}
		}
		bodies = append(bodies, strings.Join(lines[bodyStart:], "\n"))
	}
	c.Text = strings.Join(bodies, "\n")
	if c.Kind == "" {
		c.Kind = "attack"
	}
	return c, nil
}

// --- extractors ---

// Extractor refines an intermediate CTI representation in place. Extractors
// are source-independent: they only see the unified schema.
type Extractor interface {
	Name() string
	Extract(c *ctirep.CTIRep) error
}

// EntityExtractor fills Entities using the NER pipeline over title+body.
type EntityExtractor struct {
	NER *ner.Extractor
}

// Name implements Extractor.
func (EntityExtractor) Name() string { return "entity" }

// Extract implements Extractor.
func (e EntityExtractor) Extract(c *ctirep.CTIRep) error {
	text := c.Title + ".\n" + c.Text
	for _, ent := range e.NER.Extract(text) {
		c.Entities = append(c.Entities, ontology.Entity{
			Type:  ent.Type,
			Name:  ent.Name,
			Attrs: map[string]string{"extractor": ent.Source},
		})
	}
	return nil
}

// RelationExtractor fills Relations using dependency-based verb extraction
// between recognized entity spans.
type RelationExtractor struct {
	NER *ner.Extractor
}

// Name implements Extractor.
func (RelationExtractor) Name() string { return "relation" }

// Extract implements Extractor.
func (e RelationExtractor) Extract(c *ctirep.CTIRep) error {
	c.Relations = append(c.Relations, e.NER.ExtractRelations(c.Text)...)
	return nil
}

// BaselineEntityExtractor uses the regex/gazetteer recognizer (ablation
// baseline for E4).
type BaselineEntityExtractor struct {
	Baseline *ner.Baseline
}

// Name implements Extractor.
func (BaselineEntityExtractor) Name() string { return "entity-baseline" }

// Extract implements Extractor.
func (e BaselineEntityExtractor) Extract(c *ctirep.CTIRep) error {
	text := c.Title + ".\n" + c.Text
	for _, ent := range e.Baseline.Extract(text) {
		c.Entities = append(c.Entities, ontology.Entity{
			Type:  ent.Type,
			Name:  ent.Name,
			Attrs: map[string]string{"extractor": ent.Source},
		})
	}
	return nil
}
