package graph

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"
)

func saveToBytes(save func(io.Writer) error) ([]byte, error) {
	var b bytes.Buffer
	if err := save(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

func loadFromBytes(data []byte) (*Store, error) {
	return Load(bytes.NewReader(data))
}

// checkIncidence verifies IncidentEdges against the ground truth of the
// edge records themselves, for every node, direction, and live edge type.
func checkIncidence(t *testing.T, s *Store) {
	t.Helper()
	type half struct {
		id    EdgeID
		other NodeID
		typ   string
	}
	truthOut := map[NodeID][]half{}
	truthIn := map[NodeID][]half{}
	types := map[string]bool{"": true}
	s.ForEachEdge(func(e *Edge) bool {
		truthOut[e.From] = append(truthOut[e.From], half{e.ID, e.To, e.Type})
		truthIn[e.To] = append(truthIn[e.To], half{e.ID, e.From, e.Type})
		types[e.Type] = true
		return true
	})
	var buf []IncidentEdge
	s.ForEachNode(func(n *Node) bool {
		for typ := range types {
			for _, dir := range []Direction{Out, In, Both} {
				var want []half
				if dir == Out || dir == Both {
					want = append(want, truthOut[n.ID]...)
				}
				if dir == In || dir == Both {
					want = append(want, truthIn[n.ID]...)
				}
				if typ != "" {
					filtered := want[:0:0]
					for _, h := range want {
						if h.typ == typ {
							filtered = append(filtered, h)
						}
					}
					want = filtered
				}
				buf = s.IncidentEdges(buf[:0], n.ID, dir, typ)
				if len(buf) != len(want) {
					t.Fatalf("node %d dir %d type %q: got %d incidences, want %d",
						n.ID, dir, typ, len(buf), len(want))
				}
				got := append([]IncidentEdge{}, buf...)
				sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
				sort.Slice(want, func(i, j int) bool { return want[i].id < want[j].id })
				for i, h := range want {
					if got[i].ID != h.id || got[i].Other != h.other || got[i].Type != h.typ {
						t.Fatalf("node %d dir %d type %q [%d]: got %+v, want %+v",
							n.ID, dir, typ, i, got[i], h)
					}
				}
			}
		}
		return true
	})
}

// TestIncidentEdgesOrdering locks down the documented iteration contract:
// ascending edge IDs within one direction, out block before in block for
// Both, and a self-loop visible once per direction.
func TestIncidentEdgesOrdering(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("T", "a", nil)
	b, _ := s.MergeNode("T", "b", nil)
	c, _ := s.MergeNode("T", "c", nil)
	e1, _, _ := s.AddEdge(a, "x", b, nil)
	e2, _, _ := s.AddEdge(c, "x", a, nil)
	e3, _, _ := s.AddEdge(a, "y", a, nil) // self-loop
	e4, _, _ := s.AddEdge(a, "x", c, nil)

	out := s.IncidentEdges(nil, a, Out, "")
	wantOut := []EdgeID{e1, e3, e4}
	if len(out) != len(wantOut) {
		t.Fatalf("out: got %d edges, want %d", len(out), len(wantOut))
	}
	for i, id := range wantOut {
		if out[i].ID != id {
			t.Fatalf("out[%d] = %d, want %d (ascending order)", i, out[i].ID, id)
		}
	}
	both := s.IncidentEdges(nil, a, Both, "")
	wantBoth := []EdgeID{e1, e3, e4, e2, e3} // out block asc, then in block asc
	if len(both) != len(wantBoth) {
		t.Fatalf("both: got %d edges, want %d", len(both), len(wantBoth))
	}
	for i, id := range wantBoth {
		if both[i].ID != id {
			t.Fatalf("both[%d] = %d, want %d", i, both[i].ID, id)
		}
	}
	typed := s.IncidentEdges(nil, a, Out, "y")
	if len(typed) != 1 || typed[0].ID != e3 || typed[0].Other != a {
		t.Fatalf("type filter: got %+v", typed)
	}
	if unknown := s.IncidentEdges(nil, a, Both, "nosuchtype"); len(unknown) != 0 {
		t.Fatalf("unknown type matched %d edges", len(unknown))
	}
}

// TestAdjacencyUnderMutation drives the store through enough randomized
// add/delete/migrate churn to cross several CSR rebuilds, checking the
// full incidence contract before and after each phase, and finally
// through a save/load cycle (the bulk rebuild path).
func TestAdjacencyUnderMutation(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(42))
	var nodes []NodeID
	for i := 0; i < 40; i++ {
		id, _ := s.MergeNode("N", fmt.Sprintf("n%d", i), nil)
		nodes = append(nodes, id)
	}
	types := []string{"a", "b", "c"}
	var edges []EdgeID
	// Enough adds to push pending past the rebuild threshold repeatedly.
	for i := 0; i < 600; i++ {
		from := nodes[rng.Intn(len(nodes))]
		to := nodes[rng.Intn(len(nodes))]
		if id, created, err := s.AddEdge(from, types[rng.Intn(len(types))], to, nil); err != nil {
			t.Fatal(err)
		} else if created {
			edges = append(edges, id)
		}
		if len(edges) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(edges))
			if err := s.DeleteEdge(edges[i]); err == nil {
				edges = append(edges[:i], edges[i+1:]...)
			}
		}
	}
	checkIncidence(t, s)

	// Node deletion sweeps incident edges through the tombstone path.
	for i := 0; i < 5; i++ {
		if err := s.DeleteNode(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	checkIncidence(t, s)

	// MigrateEdges deletes and re-adds with fresh IDs.
	if err := s.MigrateEdges(nodes[10], nodes[20]); err != nil {
		t.Fatal(err)
	}
	checkIncidence(t, s)

	// Bulk-load rebuild path must agree with the incremental one.
	for _, save := range []func(*Store) ([]byte, error){
		func(st *Store) ([]byte, error) { return saveToBytes(st.Save) },
		func(st *Store) ([]byte, error) { return saveToBytes(st.SaveBinary) },
	} {
		data, err := save(s)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := loadFromBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		checkIncidence(t, loaded)
	}
}
