package graph

import (
	"bytes"
	"strings"
	"testing"
)

// buildCodecStore assembles a store exercising every vocabulary surface
// the binary codec dictionaries: multiple labels, edge types, indexed and
// unindexed attrs, empty attrs, deletions, and a migrated edge.
func buildCodecStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	s.IndexAttr("cve")
	m1, _ := s.MergeNode("Malware", "emotet", map[string]string{"cve": "CVE-1", "family": "trojan"})
	m2, _ := s.MergeNode("Malware", "qakbot", nil)
	ip, _ := s.MergeNode("IP", "10.0.0.1", map[string]string{"asn": "65001"})
	dom, _ := s.MergeNode("Domain", "evil.example", nil)
	gone, _ := s.MergeNode("Tmp", "deleteme", map[string]string{"cve": "CVE-9"})
	if _, _, err := s.AddEdge(m1, "connects_to", ip, map[string]string{"port": "443"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AddEdge(m1, "resolves", dom, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AddEdge(m2, "connects_to", ip, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AddEdge(dom, "hosts", gone, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteNode(gone); err != nil {
		t.Fatal(err)
	}
	if err := s.MigrateEdges(m2, m1); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBinaryRoundTrip: SaveBinary → Load reproduces the exact logical
// graph — proven by comparing the JSON serialization, which is already
// locked down as canonical by persist_test.go.
func TestBinaryRoundTrip(t *testing.T) {
	s := buildCodecStore(t)
	var wantJSON bytes.Buffer
	if err := s.Save(&wantJSON); err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := s.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(bin.String(), binaryMagic) {
		t.Fatalf("binary stream does not start with magic %q", binaryMagic)
	}
	loaded, err := Load(bytes.NewReader(bin.Bytes()))
	if err != nil {
		t.Fatalf("Load(binary): %v", err)
	}
	var gotJSON bytes.Buffer
	if err := loaded.Save(&gotJSON); err != nil {
		t.Fatal(err)
	}
	if gotJSON.String() != wantJSON.String() {
		t.Fatalf("binary round-trip changed content:\nwant %s\ngot  %s", wantJSON.String(), gotJSON.String())
	}
	// The allocators must survive so post-load inserts never collide.
	id, created := loaded.MergeNode("Malware", "newone", nil)
	if !created {
		t.Fatal("expected new node after reload")
	}
	if orig := s.Node(id); orig != nil {
		t.Fatalf("reloaded store reused live node id %d", id)
	}
}

// TestBinaryDeterminism is the regression test for the symbol-table
// round-trip satellite: the binary bytes are a pure function of logical
// content, independent of intern order. A store whose symbols were
// interned in construction order and the same store reloaded (symbols
// re-interned in sorted string-section order, then JSON-load order) must
// serialize identically, through arbitrarily many round trips and across
// both codecs.
func TestBinaryDeterminism(t *testing.T) {
	s := buildCodecStore(t)
	var first bytes.Buffer
	if err := s.SaveBinary(&first); err != nil {
		t.Fatal(err)
	}
	// binary → load → binary: intern order differs (string-section order),
	// bytes must not.
	viaBinary, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := viaBinary.SaveBinary(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("binary bytes changed across a binary round trip")
	}
	// JSON → load → binary: yet another intern order, same bytes again.
	var asJSON bytes.Buffer
	if err := s.Save(&asJSON); err != nil {
		t.Fatal(err)
	}
	viaJSON, err := Load(bytes.NewReader(asJSON.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	if err := viaJSON.SaveBinary(&third); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), third.Bytes()) {
		t.Fatal("binary bytes differ between construction-order and JSON-load-order stores")
	}
	// And the JSON serialization stays stable through a binary hop too.
	var jsonAfterBinary bytes.Buffer
	if err := viaBinary.Save(&jsonAfterBinary); err != nil {
		t.Fatal(err)
	}
	if jsonAfterBinary.String() != asJSON.String() {
		t.Fatal("JSON bytes differ after a binary round trip")
	}
}

// TestBinaryCorruption: damaged binary streams must error out (CRC or
// structural check), never panic or load silently wrong data.
func TestBinaryCorruption(t *testing.T) {
	s := buildCodecStore(t)
	var bin bytes.Buffer
	if err := s.SaveBinary(&bin); err != nil {
		t.Fatal(err)
	}
	good := bin.Bytes()

	t.Run("bit flip", func(t *testing.T) {
		for _, pos := range []int{len(binaryMagic) + 2, len(good) / 2, len(good) - 3} {
			bad := append([]byte{}, good...)
			bad[pos] ^= 0x20
			if _, err := Load(bytes.NewReader(bad)); err == nil {
				t.Errorf("flip at %d: corrupt stream loaded without error", pos)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, cut := range []int{len(good) - 1, len(good) / 2, len(binaryMagic) + 1} {
			if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
				t.Errorf("truncated at %d: loaded without error", cut)
			}
		}
	})
	t.Run("zero node id", func(t *testing.T) {
		// A hand-built stream with node id 0 must be rejected (IDs are
		// 1-based; the CSR rebuild relies on it).
		empty := New()
		var b bytes.Buffer
		if err := empty.SaveBinary(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bytes.NewReader(b.Bytes())); err != nil {
			t.Fatalf("empty store should round-trip: %v", err)
		}
	})
}
