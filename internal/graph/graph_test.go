package graph

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, s *Store, from NodeID, typ string, to NodeID) EdgeID {
	t.Helper()
	id, _, err := s.AddEdge(from, typ, to, nil)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	return id
}

func TestMergeNodeExactTextSemantics(t *testing.T) {
	s := New()
	a, created := s.MergeNode("Malware", "WannaCry", map[string]string{"src": "r1"})
	if !created {
		t.Fatal("first insert should create")
	}
	b, created := s.MergeNode("Malware", "WannaCry", map[string]string{"src": "r2", "extra": "x"})
	if created {
		t.Fatal("exact duplicate must merge, not create")
	}
	if a != b {
		t.Fatalf("merge returned different IDs: %d vs %d", a, b)
	}
	// Different case is a different description text: no merge (the paper
	// defers fuzzy merging to the fusion stage).
	c, created := s.MergeNode("Malware", "wannacry", nil)
	if !created || c == a {
		t.Error("case-different name must be a distinct node")
	}
	// Same name, different type: distinct.
	d, created := s.MergeNode("Tool", "WannaCry", nil)
	if !created || d == a {
		t.Error("same name different type must be distinct")
	}
	// First-writer-wins attribute augmentation.
	n := s.Node(a)
	if n.Attrs["src"] != "r1" {
		t.Errorf("existing attr overwritten: %q", n.Attrs["src"])
	}
	if n.Attrs["extra"] != "x" {
		t.Errorf("new attr not added: %+v", n.Attrs)
	}
	if s.Stats().MergeHits != 1 {
		t.Errorf("merge hits = %d, want 1", s.Stats().MergeHits)
	}
}

func TestAddEdgeDedup(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("Malware", "X", nil)
	b, _ := s.MergeNode("IP", "1.2.3.4", nil)
	e1, created, err := s.AddEdge(a, "CONNECT", b, map[string]string{"report": "r1"})
	if err != nil || !created {
		t.Fatalf("first edge: %v created=%v", err, created)
	}
	e2, created, err := s.AddEdge(a, "CONNECT", b, map[string]string{"report": "r2"})
	if err != nil || created {
		t.Fatalf("duplicate edge should dedup: %v created=%v", err, created)
	}
	if e1 != e2 {
		t.Error("dedup should return same edge ID")
	}
	// Different type or direction is a new edge.
	if _, created, _ := s.AddEdge(a, "SEND", b, nil); !created {
		t.Error("different type should create")
	}
	if _, created, _ := s.AddEdge(b, "CONNECT", a, nil); !created {
		t.Error("reverse direction should create")
	}
	if e := s.Edge(e1); e.Attrs["report"] != "r1" {
		t.Error("edge attr overwritten on dedup")
	}
}

func TestAddEdgeUnknownEndpoint(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("Malware", "X", nil)
	if _, _, err := s.AddEdge(a, "USE", 999, nil); err == nil {
		t.Error("expected error for unknown target")
	}
	if _, _, err := s.AddEdge(999, "USE", a, nil); err == nil {
		t.Error("expected error for unknown source")
	}
}

func TestLookupsAndIndexes(t *testing.T) {
	s := New()
	s.MergeNode("Malware", "A", map[string]string{"family": "ransom"})
	s.MergeNode("Malware", "B", map[string]string{"family": "ransom"})
	s.MergeNode("Tool", "A", nil)

	if n := s.FindNode("Malware", "A"); n == nil || n.Type != "Malware" {
		t.Error("FindNode failed")
	}
	if n := s.FindNode("Malware", "missing"); n != nil {
		t.Error("FindNode should return nil for missing")
	}
	if got := len(s.NodesByName("A")); got != 2 {
		t.Errorf("NodesByName(A) = %d, want 2", got)
	}
	if got := len(s.NodesByType("Malware")); got != 2 {
		t.Errorf("NodesByType(Malware) = %d, want 2", got)
	}
	// Unindexed scan and indexed lookup agree.
	scan := s.NodesByAttr("family", "ransom")
	s.IndexAttr("family")
	idx := s.NodesByAttr("family", "ransom")
	if len(scan) != 2 || len(idx) != 2 {
		t.Errorf("attr lookup: scan=%d idx=%d, want 2/2", len(scan), len(idx))
	}
}

func TestIndexAttrTracksUpdates(t *testing.T) {
	s := New()
	s.IndexAttr("k")
	id, _ := s.MergeNode("Tool", "t", map[string]string{"k": "v1"})
	if got := s.NodesByAttr("k", "v1"); len(got) != 1 {
		t.Fatal("index missed insert")
	}
	if err := s.SetAttr(id, "k", "v2"); err != nil {
		t.Fatal(err)
	}
	if got := s.NodesByAttr("k", "v1"); len(got) != 0 {
		t.Error("stale index entry after SetAttr")
	}
	if got := s.NodesByAttr("k", "v2"); len(got) != 1 {
		t.Error("index missed update")
	}
	s.DeleteNode(id)
	if got := s.NodesByAttr("k", "v2"); len(got) != 0 {
		t.Error("stale index entry after delete")
	}
}

func TestNeighborsAndEdgesDirections(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("Malware", "A", nil)
	b, _ := s.MergeNode("IP", "1.1.1.1", nil)
	c, _ := s.MergeNode("Domain", "x.com", nil)
	mustEdge(t, s, a, "CONNECT", b)
	mustEdge(t, s, c, "RESOLVE_TO", b)

	if nb := s.Neighbors(a, Out); len(nb) != 1 || nb[0].ID != b {
		t.Errorf("out neighbors of a: %+v", nb)
	}
	if nb := s.Neighbors(b, In); len(nb) != 2 {
		t.Errorf("in neighbors of b: %+v", nb)
	}
	if nb := s.Neighbors(b, Out); len(nb) != 0 {
		t.Errorf("out neighbors of b: %+v", nb)
	}
	if nb := s.Neighbors(b, Both); len(nb) != 2 {
		t.Errorf("both neighbors of b: %+v", nb)
	}
	if es := s.Edges(b, Both); len(es) != 2 {
		t.Errorf("edges of b: %+v", es)
	}
}

func TestDeleteNodeRemovesIncidentEdges(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("Malware", "A", nil)
	b, _ := s.MergeNode("IP", "1.1.1.1", nil)
	mustEdge(t, s, a, "CONNECT", b)
	if err := s.DeleteNode(b); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.Edges != 0 || got.Nodes != 1 {
		t.Errorf("after delete: %+v", got)
	}
	if es := s.Edges(a, Out); len(es) != 0 {
		t.Errorf("dangling edge: %+v", es)
	}
	// Re-inserting the deleted node gets a fresh ID (no reuse).
	b2, created := s.MergeNode("IP", "1.1.1.1", nil)
	if !created || b2 == b {
		t.Error("deleted node key should be insertable with a new ID")
	}
}

func TestMigrateEdgesPreservesTopology(t *testing.T) {
	s := New()
	dup, _ := s.MergeNode("Malware", "WANACRY", nil)
	canon, _ := s.MergeNode("Malware", "WannaCry", nil)
	ip, _ := s.MergeNode("IP", "9.9.9.9", nil)
	rep, _ := s.MergeNode("MalwareReport", "r77", nil)
	mustEdge(t, s, dup, "CONNECT", ip)
	mustEdge(t, s, rep, "DESCRIBES", dup)
	// An edge the canonical node already has: migration must dedup.
	mustEdge(t, s, canon, "CONNECT", ip)

	if err := s.MigrateEdges(dup, canon); err != nil {
		t.Fatal(err)
	}
	if es := s.Edges(dup, Both); len(es) != 0 {
		t.Errorf("dup still has edges: %+v", es)
	}
	outs := s.Edges(canon, Out)
	if len(outs) != 1 || outs[0].To != ip {
		t.Errorf("canon out edges wrong: %+v", outs)
	}
	ins := s.Edges(canon, In)
	if len(ins) != 1 || ins[0].From != rep {
		t.Errorf("canon in edges wrong: %+v", ins)
	}
}

func TestMigrateEdgesDropsSelfLoops(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("Malware", "a", nil)
	b, _ := s.MergeNode("Malware", "b", nil)
	mustEdge(t, s, a, "RELATED_TO", b)
	if err := s.MigrateEdges(a, b); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Edges != 0 {
		t.Errorf("self loop survived migration: %+v", st)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("Malware", "WannaCry", map[string]string{"seen": "2017"})
	b, _ := s.MergeNode("IP", "1.2.3.4", nil)
	mustEdge(t, s, a, "CONNECT", b)
	s.DeleteNode(b) // exercise ID non-reuse across save/load
	c, _ := s.MergeNode("Domain", "kill.switch.com", nil)
	mustEdge(t, s, a, "CONNECT", c)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st1, st2 := s.Stats(), s2.Stats(); st1.Nodes != st2.Nodes || st1.Edges != st2.Edges {
		t.Errorf("stats mismatch: %+v vs %+v", st1, st2)
	}
	if n := s2.FindNode("Malware", "WannaCry"); n == nil || n.Attrs["seen"] != "2017" {
		t.Error("node attrs lost in round trip")
	}
	// New IDs continue after the loaded maximum.
	d, _ := s2.MergeNode("Tool", "fresh", nil)
	if d <= c {
		t.Errorf("ID counter not restored: new %d <= old %d", d, c)
	}
	// Merge semantics survive load.
	if _, created := s2.MergeNode("Malware", "WannaCry", nil); created {
		t.Error("merge index not rebuilt on load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString(`{"magic":"nope","version":1}`)); err == nil {
		t.Error("expected magic mismatch error")
	}
	if _, err := Load(bytes.NewBufferString("not json")); err == nil {
		t.Error("expected decode error")
	}
}

func TestExpandFromRespectsLimits(t *testing.T) {
	s := New()
	hub, _ := s.MergeNode("Malware", "hub", nil)
	for i := 0; i < 50; i++ {
		n, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		mustEdge(t, s, hub, "CONNECT", n)
	}
	sg := s.ExpandFrom([]NodeID{hub}, 1, 10, 100)
	if len(sg.Nodes) != 11 { // hub + 10 neighbors
		t.Errorf("maxNeighbors not honored: %d nodes", len(sg.Nodes))
	}
	sg = s.ExpandFrom([]NodeID{hub}, 1, 1000, 20)
	if len(sg.Nodes) != 20 {
		t.Errorf("maxNodes not honored: %d nodes", len(sg.Nodes))
	}
	// Every edge in the subgraph connects included nodes.
	inc := map[NodeID]bool{}
	for _, n := range sg.Nodes {
		inc[n.ID] = true
	}
	for _, e := range sg.Edges {
		if !inc[e.From] || !inc[e.To] {
			t.Errorf("edge %+v leaves the subgraph", e)
		}
	}
}

func TestExpandFromDepth(t *testing.T) {
	s := New()
	// Chain a-b-c-d.
	ids := make([]NodeID, 4)
	for i := range ids {
		ids[i], _ = s.MergeNode("Malware", fmt.Sprintf("n%d", i), nil)
		if i > 0 {
			mustEdge(t, s, ids[i-1], "RELATED_TO", ids[i])
		}
	}
	sg := s.ExpandFrom([]NodeID{ids[0]}, 2, 10, 100)
	if len(sg.Nodes) != 3 {
		t.Errorf("depth 2 from chain head should reach 3 nodes, got %d", len(sg.Nodes))
	}
}

func TestRandomSubgraphDeterministicPerSeed(t *testing.T) {
	s := New()
	var prev NodeID
	for i := 0; i < 30; i++ {
		id, _ := s.MergeNode("Malware", fmt.Sprintf("m%d", i), nil)
		if i > 0 {
			mustEdge(t, s, prev, "RELATED_TO", id)
		}
		prev = id
	}
	a := s.RandomSubgraph(42, 10)
	b := s.RandomSubgraph(42, 10)
	if len(a.Nodes) != 10 || len(b.Nodes) != 10 {
		t.Fatalf("sizes: %d, %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i].ID != b.Nodes[i].ID {
			t.Fatal("same seed must give same subgraph")
		}
	}
}

func TestRandomSubgraphEmptyStore(t *testing.T) {
	s := New()
	if sg := s.RandomSubgraph(1, 5); len(sg.Nodes) != 0 {
		t.Errorf("empty store returned nodes: %+v", sg)
	}
}

func TestCollapseFrom(t *testing.T) {
	s := New()
	// anchor - x - leaf1, leaf2 ; collapsing x hides the leaves only.
	anchor, _ := s.MergeNode("Malware", "anchor", nil)
	x, _ := s.MergeNode("IP", "x", nil)
	l1, _ := s.MergeNode("Domain", "l1", nil)
	l2, _ := s.MergeNode("Domain", "l2", nil)
	mustEdge(t, s, anchor, "CONNECT", x)
	mustEdge(t, s, x, "RESOLVE_TO", l1)
	mustEdge(t, s, x, "RESOLVE_TO", l2)
	view := []NodeID{anchor, x, l1, l2}
	hidden := s.CollapseFrom(x, view, []NodeID{anchor})
	if len(hidden) != 2 {
		t.Fatalf("expected 2 hidden nodes, got %v", hidden)
	}
	for _, h := range hidden {
		if h == anchor || h == x {
			t.Errorf("collapse hid anchor or target: %v", hidden)
		}
	}
}

func TestConcurrentMergeNodeSafe(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, _ := s.MergeNode("Malware", fmt.Sprintf("m%d", i%50), nil)
				tgt, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i%20), nil)
				s.AddEdge(id, "CONNECT", tgt, nil)
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Nodes != 70 {
		t.Errorf("concurrent merges produced %d nodes, want 70", st.Nodes)
	}
	if st.Edges > 50*20 {
		t.Errorf("edge dedup failed under concurrency: %d edges", st.Edges)
	}
}

// Property: MergeNode is idempotent — inserting any (type, name) twice
// yields the same ID and does not grow the node count.
func TestMergeIdempotentQuick(t *testing.T) {
	s := New()
	f := func(typ, name uint8) bool {
		ty := fmt.Sprintf("T%d", typ%5)
		nm := fmt.Sprintf("n%d", name)
		before := s.Stats().Nodes
		id1, created1 := s.MergeNode(ty, nm, nil)
		mid := s.Stats().Nodes
		id2, created2 := s.MergeNode(ty, nm, nil)
		after := s.Stats().Nodes
		if created1 && mid != before+1 {
			return false
		}
		return id1 == id2 && !created2 && after == mid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: save/load round trip preserves stats for randomly built graphs.
func TestSaveLoadQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		s := New()
		var ids []NodeID
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				id, _ := s.MergeNode(fmt.Sprintf("T%d", op%4), fmt.Sprintf("n%d", op%97), nil)
				ids = append(ids, id)
			case 2:
				if len(ids) >= 2 {
					s.AddEdge(ids[int(op)%len(ids)], "R", ids[int(op/2)%len(ids)], nil)
				}
			}
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		s2, err := Load(&buf)
		if err != nil {
			return false
		}
		a, b := s.Stats(), s2.Stats()
		return a.Nodes == b.Nodes && a.Edges == b.Edges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
