package graph

import "securitykg/internal/metrics"

// Process-wide MVCC event counters (the matching point-in-time gauges —
// open snapshots, retained history sizes — come from MVCCStats, which
// servers export per instance). Each is a single atomic add on paths
// that already take the store mutex, so the overhead is noise.
var (
	mSnapshotsOpened = metrics.NewCounter("skg_mvcc_snapshots_opened_total",
		"MVCC snapshots opened (read statements pin one each).")
	mTxBegin = metrics.NewCounter("skg_tx_begin_total",
		"Transactions opened (explicit BEGIN and per-statement implicit transactions).")
	mTxCommit = metrics.NewCounter("skg_tx_commit_total",
		"Transactions committed.")
	mTxRollback = metrics.NewCounter("skg_tx_rollback_total",
		"Transactions rolled back.")
)
