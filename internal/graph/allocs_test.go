//go:build !race

// Allocation regression guards. AllocsPerRun numbers are meaningless
// under the race detector (it instruments allocations), so these run in
// the plain-build test pass `make test` adds alongside the -race suite.

package graph

import (
	"fmt"
	"testing"
)

// TestIncidentEdgesAllocs locks down the zero-allocation contract of the
// CSR incidence iteration the query executor's expand stages sit on: a
// caller-reused buffer means steady-state traversal never allocates.
func TestIncidentEdgesAllocs(t *testing.T) {
	s := New()
	hub, _ := s.MergeNode("Malware", "hub", nil)
	for i := 0; i < 200; i++ {
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		s.AddEdge(hub, "CONNECT", ip, nil)
		if i%3 == 0 {
			s.AddEdge(ip, "RESOLVE", hub, nil)
		}
	}
	buf := make([]IncidentEdge, 0, 512)
	for _, tc := range []struct {
		name string
		dir  Direction
		typ  string
	}{
		{"out-typed", Out, "CONNECT"},
		{"in-typed", In, "RESOLVE"},
		{"both-all", Both, ""},
	} {
		allocs := testing.AllocsPerRun(100, func() {
			buf = s.IncidentEdges(buf[:0], hub, tc.dir, tc.typ)
		})
		if allocs > 0 {
			t.Errorf("%s: IncidentEdges allocates %.1f/op with a warm buffer, want 0", tc.name, allocs)
		}
	}
}
