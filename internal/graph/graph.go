// Package graph implements the embedded property-graph store that plays the
// role Neo4j plays in the paper: typed nodes with key-value attributes,
// typed directed edges, label and property indexes, exact-text merge
// semantics at insertion time (Section 2.5), JSON persistence, and the
// traversal primitives the Cypher engine, the fusion stage, and the
// exploration API are built on.
//
// Internally the store is symbol-interned and copy-on-write: labels, edge
// types, and attribute names resolve to dense uint32 symbols (symtab.go),
// every index map is keyed on symbols or small structs rather than built
// strings, incidence lives in a CSR-style packed layout (adjacency.go),
// and node/edge records are immutable once published — mutations build a
// fresh record and swap it in, so accessors hand out shared pointers
// without copying. None of this is visible at the API: everything exported
// still speaks strings, and the JSON persistence format is unchanged.
package graph

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs are never reused within a store's lifetime.
type NodeID int64

// EdgeID identifies an edge.
type EdgeID int64

// Node is one graph node. Type is the ontology entity type (stored as a
// string so the store stays schema-agnostic), Name is the description text
// whose exact equality drives storage-time merging.
//
// Nodes returned by the store are shared immutable records: treat them
// (including Attrs) as read-only. Mutating one corrupts indexed state.
type Node struct {
	ID    NodeID            `json:"id"`
	Type  string            `json:"type"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Edge is one directed, typed edge. Edges returned by the store are shared
// immutable records: treat them (including Attrs) as read-only.
type Edge struct {
	ID    EdgeID            `json:"id"`
	Type  string            `json:"type"`
	From  NodeID            `json:"from"`
	To    NodeID            `json:"to"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Direction selects edge orientation for traversals.
type Direction int

const (
	Out Direction = iota
	In
	Both
)

// nodeRec pairs a node's immutable record with its interned label so
// index maintenance never re-hashes the label string.
type nodeRec struct {
	typ Sym
	n   *Node
}

// edgeRec carries the adjacency-relevant edge fields (endpoints, interned
// type) alongside the immutable record, so CSR rebuilds and type filters
// never chase the record pointer for strings.
type edgeRec struct {
	from NodeID
	to   NodeID
	typ  Sym
	e    *Edge
}

// nodeKeyT is the exact (type, name) merge-index key: interned label +
// name string, hashed as a struct instead of a concatenation.
type nodeKeyT struct {
	typ  Sym
	name string
}

// edgeKeyT is the (from, type, to) dedup-index key.
type edgeKeyT struct {
	from NodeID
	to   NodeID
	typ  Sym
}

// typeAttrKeyT is the composite (type, key, val) index key for indexed
// attributes.
type typeAttrKeyT struct {
	typ Sym
	key Sym
	val string
}

// Store is an in-memory property graph safe for concurrent use.
//
// Reads through the plain accessors observe the latest state, including
// the uncommitted writes of an open transaction (the single writer).
// Readers that need isolation take a Snapshot (or run inside a Tx) and
// read through the View interface: versioned visibility (mvcc.go) gives
// every snapshot the exact committed state as of its creation, without
// blocking — or being blocked by — the writer.
type Store struct {
	mu sync.RWMutex

	// writerMu serializes mutators: bare mutations act as single-op
	// transactions and hold it for one call; a Tx acquires it at its
	// first write and holds it until Commit/Rollback. Lock order is
	// always writerMu before mu.
	writerMu sync.Mutex

	syms  *symtab
	nodes map[NodeID]nodeRec
	edges map[EdgeID]edgeRec
	adj   *adjacency

	// MVCC side state (mvcc.go). commitTS is the timestamp of the last
	// committed write; curProv is the in-flight (provisional) timestamp a
	// mutator stamps its versions with; curTx is the open transaction, if
	// any. nodeBegin/edgeBegin record when the *current* record of an
	// entity became visible (absent = since forever); nodeOld/edgeOld
	// hold superseded versions with their [begin, end) validity. All five
	// maps stay empty — and every read stays on the fast path — unless a
	// snapshot or transaction is active while writes happen; they are
	// purged as soon as the last snapshot closes.
	commitTS  uint64
	curProv   uint64
	curTx     *Tx
	nodeBegin map[NodeID]uint64
	edgeBegin map[EdgeID]uint64
	nodeOld   map[NodeID][]nodeVer
	edgeOld   map[EdgeID][]edgeVer
	snaps     map[uint64]int // active snapshot count per asOf timestamp

	byKey  map[nodeKeyT]NodeID            // exact (type, name) merge index
	byType map[Sym]map[NodeID]struct{}    // label index; empty sets are pruned
	byName map[string]map[NodeID]struct{} // name index across types; empty sets are pruned
	// propIdx[key][val] is the node set for one indexed attribute value;
	// propIdxSize[key] counts the nodes carrying the key (sum over vals),
	// kept live so AvgAttrBucket is O(1).
	propIdx     map[Sym]map[string]map[NodeID]struct{}
	propIdxSize map[Sym]int
	typeAttr    map[typeAttrKeyT]map[NodeID]struct{} // composite (type, key, val) index for indexed attrs
	indexed     map[Sym]bool                         // which attribute keys are indexed
	edgeKey     map[edgeKeyT]EdgeID

	edgeTypeCount map[Sym]int // live per-type edge counts for the statistics layer
	// idxEpoch is the per-mutation change counter: bumped by IndexAttr and
	// by every effective mutation. A cheap has-anything-changed probe for
	// diagnostics and tests — the plan cache keys on statsVersion below,
	// and the durability layer consumes onMutation, not this counter.
	idxEpoch int64
	// statsVersion is the coarser planner-facing epoch: it bumps only when
	// a planner-visible count (total nodes/edges, a label's cardinality, an
	// edge type's cardinality) has drifted materially since the last bump,
	// or when IndexAttr creates a new access path. Plan caches key on it,
	// so write-heavy workloads whose store size stays roughly stable keep
	// their cached plans (stats.go).
	statsVersion int64
	statsBase    statsSnapshot
	histMu       sync.Mutex
	histCache    map[degreeKey]cachedHistogram
	// Cardinality-drift feedback (drift.go): per-(label, edge type,
	// direction) counters of estimate-vs-actual divergence reported by
	// EXPLAIN ANALYZE. Enough observations retire the matching degree
	// histogram and bump statsVersion so cached plans re-cost.
	driftMu sync.Mutex
	drift   map[DriftKey]*driftEntry
	// onMutation observes every effective mutation under the write lock
	// (SetMutationHook); the durability layer tees writes into its WAL here.
	onMutation func(Mutation)
	// bulk counts open bulk-mode brackets (ApplyStream, ApplyBatch, a
	// Tx marked SetBulk, or an explicit BeginBulk/EndBulk pair). While
	// nonzero, per-mutation adjacency compaction and stats-drift checks
	// are suppressed; closing the outermost bracket seals with one
	// rebuild + one materiality judgement instead. Brackets nest so a
	// bulk transaction inside a load bracket still seals exactly once.
	bulk int

	nextNode NodeID
	nextEdge EdgeID

	mergeHits int64 // how many MergeNode calls matched an existing node

	// queryCache anchors engine-level derived state to the store (see
	// QueryCache); opaque to the graph package.
	queryCacheOnce sync.Once
	queryCache     any
}

// New creates an empty store with a property index on "name" semantics
// already provided by the dedicated name index. Additional attribute
// indexes can be requested with IndexAttr.
func New() *Store {
	s := &Store{
		syms:          newSymtab(),
		nodes:         make(map[NodeID]nodeRec),
		edges:         make(map[EdgeID]edgeRec),
		adj:           newAdjacency(),
		byKey:         make(map[nodeKeyT]NodeID),
		byType:        make(map[Sym]map[NodeID]struct{}),
		byName:        make(map[string]map[NodeID]struct{}),
		propIdx:       make(map[Sym]map[string]map[NodeID]struct{}),
		propIdxSize:   make(map[Sym]int),
		typeAttr:      make(map[typeAttrKeyT]map[NodeID]struct{}),
		indexed:       make(map[Sym]bool),
		edgeKey:       make(map[edgeKeyT]EdgeID),
		edgeTypeCount: make(map[Sym]int),
		statsVersion:  1,
		nodeBegin:     make(map[NodeID]uint64),
		edgeBegin:     make(map[EdgeID]uint64),
		nodeOld:       make(map[NodeID][]nodeVer),
		edgeOld:       make(map[EdgeID][]edgeVer),
		snaps:         make(map[uint64]int),
	}
	s.adj.all = []EdgeID{}
	s.rebaseStatsLocked()
	return s
}

// Reserve pre-sizes the store's core maps for a bulk load of roughly
// nodes nodes and edges edges, eliminating the incremental rehashing a
// long insert sequence otherwise pays. Only empty maps are replaced —
// on a store that already holds data Reserve is a no-op — so callers
// (recovery, bulk import) can pass a cheap upper bound unconditionally.
func (s *Store) Reserve(nodes, edges int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nodes > 0 && len(s.nodes) == 0 {
		s.nodes = make(map[NodeID]nodeRec, nodes)
		s.byKey = make(map[nodeKeyT]NodeID, nodes)
		s.byName = make(map[string]map[NodeID]struct{}, nodes)
	}
	if edges > 0 && len(s.edges) == 0 {
		s.edges = make(map[EdgeID]edgeRec, edges)
		s.edgeKey = make(map[edgeKeyT]EdgeID, edges)
	}
}

// QueryCache returns the store-scoped slot higher layers use to share
// derived state across consumers of one store — the Cypher engine keeps
// its compiled-plan cache here, so every engine over a store shares
// plans. init runs at most once per store; the value's lifetime is the
// store's, so caches can never outlive (or leak past) their graph.
func (s *Store) QueryCache(init func() any) any {
	s.queryCacheOnce.Do(func() { s.queryCache = init() })
	return s.queryCache
}

// IndexAttr enables an index on the given attribute key. Existing nodes
// are back-filled. Index creation is not versioned: snapshots taken
// before the index see it too, which only widens their access paths —
// visibility filtering still applies per node.
func (s *Store) IndexAttr(key string) {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.syms.intern(key)
	if s.indexed[ks] {
		return
	}
	s.indexed[ks] = true
	s.idxEpoch++
	// A new access path always changes what the planner may pick: bump the
	// planner-facing stats version unconditionally.
	s.bumpStatsLocked()
	s.propIdx[ks] = make(map[string]map[NodeID]struct{})
	for id, rec := range s.nodes {
		if v, ok := rec.n.Attrs[key]; ok {
			s.propIdxAdd(ks, v, id)
			s.typeAttrAdd(rec.typ, ks, v, id)
		}
	}
}

func (s *Store) typeAttrAdd(typ, key Sym, val string, id NodeID) {
	k := typeAttrKeyT{typ: typ, key: key, val: val}
	set, ok := s.typeAttr[k]
	if !ok {
		set = make(map[NodeID]struct{})
		s.typeAttr[k] = set
	}
	set[id] = struct{}{}
}

func (s *Store) typeAttrDel(typ, key Sym, val string, id NodeID) {
	k := typeAttrKeyT{typ: typ, key: key, val: val}
	if set, ok := s.typeAttr[k]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(s.typeAttr, k)
		}
	}
}

func (s *Store) propIdxAdd(key Sym, val string, id NodeID) {
	m := s.propIdx[key]
	set, ok := m[val]
	if !ok {
		set = make(map[NodeID]struct{})
		m[val] = set
	}
	set[id] = struct{}{}
	s.propIdxSize[key]++
}

func (s *Store) propIdxDel(key Sym, val string, id NodeID) {
	if set, ok := s.propIdx[key][val]; ok {
		if _, had := set[id]; had {
			delete(set, id)
			s.propIdxSize[key]--
			if len(set) == 0 {
				delete(s.propIdx[key], val)
			}
		}
	}
}

// MergeNode inserts a node or returns the existing node with exactly the
// same (type, name), implementing the paper's storage-time merge rule:
// "we only merge nodes with exactly the same description text". Attributes
// of an existing node are augmented (new keys added, existing keys kept —
// first writer wins, preventing early deletion of information).
func (s *Store) MergeNode(typ, name string, attrs map[string]string) (NodeID, bool) {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginBareLocked()
	defer s.endBareLocked()
	return s.mergeNodeLocked(typ, name, attrs)
}

func (s *Store) mergeNodeLocked(typ, name string, attrs map[string]string) (NodeID, bool) {
	tsym := s.syms.intern(typ)
	key := nodeKeyT{typ: tsym, name: name}
	if id, ok := s.byKey[key]; ok {
		s.mergeHits++
		rec := s.nodes[id]
		n := rec.n
		// Copy-on-write: records already published to readers are never
		// touched — augmentation builds a fresh attr map and node.
		var merged map[string]string
		for k, v := range attrs {
			if _, exists := n.Attrs[k]; !exists {
				if merged == nil {
					merged = make(map[string]string, len(n.Attrs)+len(attrs))
					for k2, v2 := range n.Attrs {
						merged[k2] = v2
					}
				}
				ks := s.syms.intern(k)
				merged[s.syms.str(ks)] = v
				if s.indexed[ks] {
					s.propIdxAdd(ks, v, id)
					s.typeAttrAdd(tsym, ks, v, id)
				}
			}
		}
		if merged != nil {
			s.retireNodeLocked(id, rec, true)
			nn := *n
			nn.Attrs = merged
			s.nodes[id] = nodeRec{typ: rec.typ, n: &nn}
			s.stampNodeLocked(id)
			s.noteMutation(Mutation{Op: OpMergeNode, Type: typ, Name: name, Attrs: attrs})
		}
		return id, false
	}
	s.nextNode++
	id := s.nextNode
	n := &Node{ID: id, Type: s.syms.str(tsym), Name: name}
	if len(attrs) > 0 {
		n.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			ks := s.syms.intern(k)
			n.Attrs[s.syms.str(ks)] = v
			if s.indexed[ks] {
				s.propIdxAdd(ks, v, id)
				s.typeAttrAdd(tsym, ks, v, id)
			}
		}
	}
	s.retireNodeLocked(id, nodeRec{}, false)
	s.nodes[id] = nodeRec{typ: tsym, n: n}
	s.stampNodeLocked(id)
	s.byKey[key] = id
	if s.byType[tsym] == nil {
		s.byType[tsym] = make(map[NodeID]struct{})
	}
	s.byType[tsym][id] = struct{}{}
	if s.byName[name] == nil {
		s.byName[name] = make(map[NodeID]struct{})
	}
	s.byName[name][id] = struct{}{}
	s.noteMutation(Mutation{Op: OpMergeNode, Type: typ, Name: name, Attrs: attrs})
	return id, true
}

// AddEdge inserts a directed edge, deduplicating identical (from, type, to)
// triples: re-adding merges attributes like MergeNode. Returns the edge ID
// and whether a new edge was created.
func (s *Store) AddEdge(from NodeID, typ string, to NodeID, attrs map[string]string) (EdgeID, bool, error) {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginBareLocked()
	defer s.endBareLocked()
	return s.addEdgePublicLocked(from, typ, to, attrs)
}

func (s *Store) addEdgePublicLocked(from NodeID, typ string, to NodeID, attrs map[string]string) (EdgeID, bool, error) {
	if _, ok := s.nodes[from]; !ok {
		return 0, false, fmt.Errorf("graph: AddEdge: unknown source node %d", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return 0, false, fmt.Errorf("graph: AddEdge: unknown target node %d", to)
	}
	tsym := s.syms.intern(typ)
	ek := edgeKeyT{from: from, to: to, typ: tsym}
	if id, ok := s.edgeKey[ek]; ok {
		rec := s.edges[id]
		e := rec.e
		var merged map[string]string
		for k, v := range attrs {
			if _, exists := e.Attrs[k]; !exists {
				if merged == nil {
					merged = make(map[string]string, len(e.Attrs)+len(attrs))
					for k2, v2 := range e.Attrs {
						merged[k2] = v2
					}
				}
				merged[s.syms.canon(k)] = v
			}
		}
		if merged != nil {
			s.retireEdgeLocked(id, rec, true)
			ne := *e
			ne.Attrs = merged
			s.edges[id] = edgeRec{from: rec.from, to: rec.to, typ: rec.typ, e: &ne}
			s.stampEdgeLocked(id)
			s.noteMutation(Mutation{Op: OpAddEdge, From: from, Type: typ, To: to, Attrs: attrs})
		}
		return id, false, nil
	}
	s.nextEdge++
	id := s.nextEdge
	e := &Edge{ID: id, Type: s.syms.str(tsym), From: from, To: to}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			e.Attrs[s.syms.canon(k)] = v
		}
	}
	s.retireEdgeLocked(id, edgeRec{}, false)
	s.edges[id] = edgeRec{from: from, to: to, typ: tsym, e: e}
	s.stampEdgeLocked(id)
	s.edgeKey[ek] = id
	s.adj.addEdge(id, from, to, tsym)
	s.edgeTypeCount[tsym]++
	s.noteMutation(Mutation{Op: OpAddEdge, From: from, Type: typ, To: to, Attrs: attrs})
	s.maybeRebuildAdjLocked()
	return id, true, nil
}

// Node returns the node (nil if absent). The returned record is shared and
// immutable — treat it and its Attrs as read-only.
func (s *Store) Node(id NodeID) *Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.nodes[id]
	if !ok {
		return nil
	}
	return rec.n
}

// Edge returns the edge (nil if absent). The returned record is shared and
// immutable — treat it and its Attrs as read-only.
func (s *Store) Edge(id EdgeID) *Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.edges[id]
	if !ok {
		return nil
	}
	return rec.e
}

// FindNode returns the node with the exact (type, name), or nil.
func (s *Store) FindNode(typ, name string) *Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id, ok := s.byKey[nodeKeyT{typ: s.syms.lookup(typ), name: name}]; ok {
		return s.nodes[id].n
	}
	return nil
}

// NodesByName returns all nodes whose Name equals name (any type), sorted
// by ID.
func (s *Store) NodesByName(name string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byName[name])
}

// NodesByType returns all nodes with the given type, sorted by ID.
func (s *Store) NodesByType(typ string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byType[s.syms.lookup(typ)])
}

// NodesByAttr returns nodes with attrs[key] == val. If the attribute is
// indexed the lookup is O(result); otherwise it scans.
func (s *Store) NodesByAttr(key, val string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ks := s.syms.lookup(key); s.indexed[ks] {
		return s.collect(s.propIdx[ks][val])
	}
	var out []*Node
	for _, rec := range s.nodes {
		if rec.n.Attrs[key] == val {
			out = append(out, rec.n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Store) collect(set map[NodeID]struct{}) []*Node {
	out := make([]*Node, 0, len(set))
	for id := range set {
		out = append(out, s.nodes[id].n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns the edges incident to id in the given direction, sorted by
// edge ID. The records are shared and immutable — read-only. For the
// executor's inner loop prefer IncidentEdges, which avoids materializing
// edge records at all.
func (s *Store) Edges(id NodeID, dir Direction) []*Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Edge
	sorted := true
	s.adj.forEach(id, dir, func(he halfEdge) bool {
		e := s.edges[he.id].e
		if n := len(out); n > 0 && out[n-1].ID > e.ID {
			sorted = false
		}
		out = append(out, e)
		return true
	})
	// Each direction walks in ascending edge-ID order already; only a Both
	// walk whose out and in blocks interleave pays the sort.
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out
}

// Neighbors returns the distinct nodes adjacent to id in the given
// direction, sorted by ID.
func (s *Store) Neighbors(id NodeID, dir Direction) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[NodeID]struct{})
	s.adj.forEach(id, dir, func(he halfEdge) bool {
		seen[he.other] = struct{}{}
		return true
	})
	return s.collect(seen)
}

// SetAttr sets one attribute on a node, updating indexes.
func (s *Store) SetAttr(id NodeID, key, val string) error {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginBareLocked()
	defer s.endBareLocked()
	return s.setAttrLocked(id, key, val)
}

func (s *Store) setAttrLocked(id NodeID, key, val string) error {
	rec, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("graph: SetAttr: unknown node %d", id)
	}
	n := rec.n
	old, had := n.Attrs[key]
	if had && old == val {
		return nil // no-op write: nothing to invalidate or log
	}
	ks := s.syms.intern(key)
	if had && s.indexed[ks] {
		s.propIdxDel(ks, old, id)
		s.typeAttrDel(rec.typ, ks, old, id)
	}
	merged := make(map[string]string, len(n.Attrs)+1)
	for k, v := range n.Attrs {
		merged[k] = v
	}
	merged[s.syms.str(ks)] = val
	s.retireNodeLocked(id, rec, true)
	nn := *n
	nn.Attrs = merged
	s.nodes[id] = nodeRec{typ: rec.typ, n: &nn}
	s.stampNodeLocked(id)
	if s.indexed[ks] {
		s.propIdxAdd(ks, val, id)
		s.typeAttrAdd(rec.typ, ks, val, id)
	}
	s.noteMutation(Mutation{Op: OpSetAttr, Node: id, Key: key, Val: val})
	return nil
}

// DeleteNode removes a node and all incident edges.
func (s *Store) DeleteNode(id NodeID) error {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginBareLocked()
	defer s.endBareLocked()
	return s.deleteNodeLocked(id)
}

func (s *Store) deleteNodeLocked(id NodeID) error {
	rec, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("graph: DeleteNode: unknown node %d", id)
	}
	var eids []EdgeID
	s.adj.forEach(id, Both, func(he halfEdge) bool {
		eids = append(eids, he.id)
		return true
	})
	for _, eid := range eids {
		s.deleteEdgeLocked(eid) // idempotent: self-loops appear twice
	}
	s.retireNodeLocked(id, rec, true)
	s.uninstallNodeLocked(id, rec)
	delete(s.nodeBegin, id)
	s.adj.removeNode(id)
	s.noteMutation(Mutation{Op: OpDeleteNode, Node: id})
	s.maybeRebuildAdjLocked()
	return nil
}

// uninstallNodeLocked removes node id's current record and every index
// entry derived from it. Shared by DeleteNode and transaction rollback
// (which strips the tx's version before reinstalling the pre-image).
func (s *Store) uninstallNodeLocked(id NodeID, rec nodeRec) {
	n := rec.n
	key := nodeKeyT{typ: rec.typ, name: n.Name}
	if cur, ok := s.byKey[key]; ok && cur == id {
		delete(s.byKey, key)
	}
	if set := s.byType[rec.typ]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(s.byType, rec.typ)
		}
	}
	if set := s.byName[n.Name]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(s.byName, n.Name)
		}
	}
	for k, v := range n.Attrs {
		if ks := s.syms.lookup(k); s.indexed[ks] {
			s.propIdxDel(ks, v, id)
			s.typeAttrDel(rec.typ, ks, v, id)
		}
	}
	delete(s.nodes, id)
}

// installNodeLocked is uninstallNodeLocked's inverse: it republishes a
// node record and rebuilds its index entries. Only rollback uses it.
func (s *Store) installNodeLocked(id NodeID, rec nodeRec) {
	n := rec.n
	s.nodes[id] = rec
	s.byKey[nodeKeyT{typ: rec.typ, name: n.Name}] = id
	if s.byType[rec.typ] == nil {
		s.byType[rec.typ] = make(map[NodeID]struct{})
	}
	s.byType[rec.typ][id] = struct{}{}
	if s.byName[n.Name] == nil {
		s.byName[n.Name] = make(map[NodeID]struct{})
	}
	s.byName[n.Name][id] = struct{}{}
	for k, v := range n.Attrs {
		if ks := s.syms.lookup(k); s.indexed[ks] {
			s.propIdxAdd(ks, v, id)
			s.typeAttrAdd(rec.typ, ks, v, id)
		}
	}
}

// DeleteEdge removes one edge.
func (s *Store) DeleteEdge(id EdgeID) error {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginBareLocked()
	defer s.endBareLocked()
	return s.deleteEdgePublicLocked(id)
}

func (s *Store) deleteEdgePublicLocked(id EdgeID) error {
	if _, ok := s.edges[id]; !ok {
		return fmt.Errorf("graph: DeleteEdge: unknown edge %d", id)
	}
	s.deleteEdgeLocked(id)
	s.noteMutation(Mutation{Op: OpDeleteEdge, Edge: id})
	s.maybeRebuildAdjLocked()
	return nil
}

func (s *Store) deleteEdgeLocked(id EdgeID) {
	rec, ok := s.edges[id]
	if !ok {
		return
	}
	s.retireEdgeLocked(id, rec, true)
	s.uninstallEdgeLocked(id, rec)
	delete(s.edgeBegin, id)
	s.adj.removeEdge(id, rec.from, rec.to)
}

// uninstallEdgeLocked removes edge id's current record and derived index
// state, except adjacency (callers handle that; rollback rebuilds it
// wholesale). Shared by deleteEdgeLocked and transaction rollback.
func (s *Store) uninstallEdgeLocked(id EdgeID, rec edgeRec) {
	ek := edgeKeyT{from: rec.from, to: rec.to, typ: rec.typ}
	if cur, ok := s.edgeKey[ek]; ok && cur == id {
		delete(s.edgeKey, ek)
	}
	delete(s.edges, id)
	if s.edgeTypeCount[rec.typ]--; s.edgeTypeCount[rec.typ] <= 0 {
		delete(s.edgeTypeCount, rec.typ)
	}
}

// installEdgeLocked republishes an edge record and its index entries
// (again excluding adjacency). Only rollback uses it.
func (s *Store) installEdgeLocked(id EdgeID, rec edgeRec) {
	s.edges[id] = rec
	s.edgeKey[edgeKeyT{from: rec.from, to: rec.to, typ: rec.typ}] = id
	s.edgeTypeCount[rec.typ]++
}

// MigrateEdges re-points every edge incident to from so it is incident to
// to instead, preserving edge types and attributes and deduplicating
// against existing edges of to. Self-loops created by the migration are
// dropped. Used by the knowledge-fusion stage.
func (s *Store) MigrateEdges(from, to NodeID) error {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginBareLocked()
	defer s.endBareLocked()
	return s.migrateEdgesLocked(from, to)
}

func (s *Store) migrateEdgesLocked(from, to NodeID) error {
	if _, ok := s.nodes[from]; !ok {
		return fmt.Errorf("graph: MigrateEdges: unknown node %d", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return fmt.Errorf("graph: MigrateEdges: unknown node %d", to)
	}
	var outs, ins []EdgeID
	s.adj.forEach(from, Out, func(he halfEdge) bool {
		outs = append(outs, he.id)
		return true
	})
	s.adj.forEach(from, In, func(he halfEdge) bool {
		ins = append(ins, he.id)
		return true
	})
	if len(outs) == 0 && len(ins) == 0 {
		return nil // nothing incident: no state change to log
	}
	for _, eid := range outs {
		rec := s.edges[eid]
		typ, dst, attrs := rec.typ, rec.to, rec.e.Attrs
		s.deleteEdgeLocked(eid)
		if dst == to || dst == from {
			continue
		}
		s.addEdgeLocked(to, typ, dst, attrs)
	}
	for _, eid := range ins {
		rec, ok := s.edges[eid]
		if !ok {
			continue // already removed as an out-edge self pair
		}
		typ, src, attrs := rec.typ, rec.from, rec.e.Attrs
		s.deleteEdgeLocked(eid)
		if src == to || src == from {
			continue
		}
		s.addEdgeLocked(src, typ, to, attrs)
	}
	// One logical record regardless of fan-in/out: replaying the call
	// reproduces every per-edge delete/re-add deterministically.
	s.noteMutation(Mutation{Op: OpMigrateEdges, From: from, To: to})
	s.maybeRebuildAdjLocked()
	return nil
}

// addEdgeLocked inserts or augments an edge whose attrs map is already
// safe to share (it comes from an immutable record).
func (s *Store) addEdgeLocked(from NodeID, typ Sym, to NodeID, attrs map[string]string) {
	ek := edgeKeyT{from: from, to: to, typ: typ}
	if id, ok := s.edgeKey[ek]; ok {
		rec := s.edges[id]
		e := rec.e
		var merged map[string]string
		for k, v := range attrs {
			if _, exists := e.Attrs[k]; !exists {
				if merged == nil {
					merged = make(map[string]string, len(e.Attrs)+len(attrs))
					for k2, v2 := range e.Attrs {
						merged[k2] = v2
					}
				}
				merged[k] = v
			}
		}
		if merged != nil {
			s.retireEdgeLocked(id, rec, true)
			ne := *e
			ne.Attrs = merged
			s.edges[id] = edgeRec{from: rec.from, to: rec.to, typ: rec.typ, e: &ne}
			s.stampEdgeLocked(id)
		}
		return
	}
	s.nextEdge++
	id := s.nextEdge
	e := &Edge{ID: id, Type: s.syms.str(typ), From: from, To: to}
	if len(attrs) > 0 {
		e.Attrs = attrs
	}
	s.retireEdgeLocked(id, edgeRec{}, false)
	s.edges[id] = edgeRec{from: from, to: to, typ: typ, e: e}
	s.stampEdgeLocked(id)
	s.edgeKey[ek] = id
	s.adj.addEdge(id, from, to, typ)
	s.edgeTypeCount[typ]++
}

// ForEachNode calls fn for every node; iteration stops if fn returns false.
// The callback receives the shared immutable record.
func (s *Store) ForEachNode(fn func(*Node) bool) {
	s.mu.RLock()
	ids := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := s.Node(id)
		if n == nil {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// ForEachEdge calls fn for every edge; iteration stops if fn returns false.
func (s *Store) ForEachEdge(fn func(*Edge) bool) {
	s.mu.RLock()
	ids := make([]EdgeID, 0, len(s.edges))
	for id := range s.edges {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := s.Edge(id)
		if e == nil {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// Stats summarizes store contents.
type Stats struct {
	Nodes       int            `json:"nodes"`
	Edges       int            `json:"edges"`
	NodesByType map[string]int `json:"nodes_by_type"`
	EdgesByType map[string]int `json:"edges_by_type"`
	MergeHits   int64          `json:"merge_hits"`
}

// Stats returns counts by type plus the number of storage-time merges.
// O(labels + edge types): the per-type counts read the live indexes, not
// a node/edge scan.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Nodes:       len(s.nodes),
		Edges:       len(s.edges),
		NodesByType: make(map[string]int, len(s.byType)),
		EdgesByType: make(map[string]int, len(s.edgeTypeCount)),
		MergeHits:   s.mergeHits,
	}
	for sy, set := range s.byType {
		st.NodesByType[s.syms.str(sy)] = len(set)
	}
	for sy, c := range s.edgeTypeCount {
		st.EdgesByType[s.syms.str(sy)] = c
	}
	return st
}

// --- persistence ---

type persistHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	NextNode NodeID `json:"next_node"`
	NextEdge EdgeID `json:"next_edge"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
}

const persistMagic = "securitykg-graph"

// Save writes the graph as JSON lines: a header record, then one record
// per node, then one per edge. The format is stable and diff-friendly.
// SaveBinary (binary.go) is the compact alternative; Load sniffs both.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.saveLocked(w)
}

// SaveWithHeader writes hdr's output, then the Save stream, all under one
// read lock — so whatever the header records (the durability layer's WAL
// sequence number) observes exactly the state the snapshot captures: no
// mutation can slip between the two.
func (s *Store) SaveWithHeader(w io.Writer, hdr func(io.Writer) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if hdr != nil {
		if err := hdr(w); err != nil {
			return err
		}
	}
	return s.saveLocked(w)
}

func (s *Store) saveLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := persistHeader{
		Magic: persistMagic, Version: 1,
		NextNode: s.nextNode, NextEdge: s.nextEdge,
		Nodes: len(s.nodes), Edges: len(s.edges),
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("graph: save header: %w", err)
	}
	for _, id := range s.sortedNodeIDsLocked() {
		if err := enc.Encode(s.nodes[id].n); err != nil {
			return fmt.Errorf("graph: save node %d: %w", id, err)
		}
	}
	for _, id := range s.sortedEdgeIDsLocked() {
		if err := enc.Encode(s.edges[id].e); err != nil {
			return fmt.Errorf("graph: save edge %d: %w", id, err)
		}
	}
	return bw.Flush()
}

func (s *Store) sortedNodeIDsLocked() []NodeID {
	nids := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		nids = append(nids, id)
	}
	sort.Slice(nids, func(i, j int) bool { return nids[i] < nids[j] })
	return nids
}

func (s *Store) sortedEdgeIDsLocked() []EdgeID {
	eids := make([]EdgeID, 0, len(s.edges))
	for id := range s.edges {
		eids = append(eids, id)
	}
	sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })
	return eids
}

// Load reads a graph previously written by Save or SaveBinary into an
// empty store, sniffing which codec wrote it.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		return loadBinary(br)
	}
	return loadJSON(br)
}

func loadJSON(br *bufio.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(br)
	var hdr persistHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graph: load header: %w", err)
	}
	if hdr.Magic != persistMagic {
		return nil, errors.New("graph: not a securitykg graph file")
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr.Version)
	}
	for i := 0; i < hdr.Nodes; i++ {
		var n Node
		if err := dec.Decode(&n); err != nil {
			return nil, fmt.Errorf("graph: load node %d/%d: %w", i, hdr.Nodes, err)
		}
		if err := s.loadNode(n); err != nil {
			return nil, err
		}
	}
	for i := 0; i < hdr.Edges; i++ {
		var e Edge
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("graph: load edge %d/%d: %w", i, hdr.Edges, err)
		}
		if err := s.loadEdge(e); err != nil {
			return nil, err
		}
	}
	s.finishLoad(hdr.NextNode, hdr.NextEdge)
	return s, nil
}

// loadNode validates and installs one node during Load. The store is not
// yet shared, so no locking.
func (s *Store) loadNode(n Node) error {
	if n.ID < 1 {
		return fmt.Errorf("graph: load: invalid node id %d", n.ID)
	}
	if _, dup := s.nodes[n.ID]; dup {
		return fmt.Errorf("graph: load: duplicate node id %d", n.ID)
	}
	tsym := s.syms.intern(n.Type)
	key := nodeKeyT{typ: tsym, name: n.Name}
	if _, dup := s.byKey[key]; dup {
		return fmt.Errorf("graph: load: duplicate node (%s, %q)", n.Type, n.Name)
	}
	nc := n
	nc.Type = s.syms.str(tsym)
	s.nodes[n.ID] = nodeRec{typ: tsym, n: &nc}
	s.byKey[key] = n.ID
	if s.byType[tsym] == nil {
		s.byType[tsym] = make(map[NodeID]struct{})
	}
	s.byType[tsym][n.ID] = struct{}{}
	if s.byName[n.Name] == nil {
		s.byName[n.Name] = make(map[NodeID]struct{})
	}
	s.byName[n.Name][n.ID] = struct{}{}
	return nil
}

// loadEdge validates and installs one edge during Load. Adjacency is not
// maintained per edge; finishLoad rebuilds it in one pass.
func (s *Store) loadEdge(e Edge) error {
	if e.ID < 1 {
		return fmt.Errorf("graph: load: invalid edge id %d", e.ID)
	}
	if _, dup := s.edges[e.ID]; dup {
		return fmt.Errorf("graph: load: duplicate edge id %d", e.ID)
	}
	if _, ok := s.nodes[e.From]; !ok {
		return fmt.Errorf("graph: load: edge %d references unknown node %d", e.ID, e.From)
	}
	if _, ok := s.nodes[e.To]; !ok {
		return fmt.Errorf("graph: load: edge %d references unknown node %d", e.ID, e.To)
	}
	tsym := s.syms.intern(e.Type)
	ec := e
	ec.Type = s.syms.str(tsym)
	s.edges[e.ID] = edgeRec{from: e.From, to: e.To, typ: tsym, e: &ec}
	s.edgeKey[edgeKeyT{from: e.From, to: e.To, typ: tsym}] = e.ID
	s.edgeTypeCount[tsym]++
	return nil
}

// finishLoad seals a bulk load: ID allocators, one adjacency rebuild over
// all loaded edges, and the stats baseline.
func (s *Store) finishLoad(nextNode NodeID, nextEdge EdgeID) {
	s.nextNode = nextNode
	s.nextEdge = nextEdge
	s.adj.all = nil // force reconstruction from the edge map
	s.rebuildAdjLocked()
	s.rebaseStatsLocked()
}

// SaveFile persists the graph to path atomically (write temp + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("graph: save file: %w", err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: close: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
