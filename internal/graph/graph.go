// Package graph implements the embedded property-graph store that plays the
// role Neo4j plays in the paper: typed nodes with key-value attributes,
// typed directed edges, label and property indexes, exact-text merge
// semantics at insertion time (Section 2.5), JSON persistence, and the
// traversal primitives the Cypher engine, the fusion stage, and the
// exploration API are built on.
package graph

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// NodeID identifies a node. IDs are never reused within a store's lifetime.
type NodeID int64

// EdgeID identifies an edge.
type EdgeID int64

// Node is one graph node. Type is the ontology entity type (stored as a
// string so the store stays schema-agnostic), Name is the description text
// whose exact equality drives storage-time merging.
type Node struct {
	ID    NodeID            `json:"id"`
	Type  string            `json:"type"`
	Name  string            `json:"name"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Edge is one directed, typed edge.
type Edge struct {
	ID    EdgeID            `json:"id"`
	Type  string            `json:"type"`
	From  NodeID            `json:"from"`
	To    NodeID            `json:"to"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Direction selects edge orientation for traversals.
type Direction int

const (
	Out Direction = iota
	In
	Both
)

// Store is an in-memory property graph safe for concurrent use.
type Store struct {
	mu sync.RWMutex

	nodes map[NodeID]*Node
	edges map[EdgeID]*Edge
	out   map[NodeID][]EdgeID
	in    map[NodeID][]EdgeID

	byKey    map[string]NodeID              // exact (type, name) merge index
	byType   map[string]map[NodeID]struct{} // label index
	byName   map[string]map[NodeID]struct{} // name index across types
	propIdx  map[string]map[string]map[NodeID]struct{}
	typeAttr map[string]map[NodeID]struct{} // composite (type, key, val) index for indexed attrs
	indexed  map[string]bool                // which attribute keys are indexed
	edgeKey  map[string]EdgeID

	edgeTypeCount map[string]int // live per-type edge counts for the statistics layer
	// idxEpoch is the per-mutation change counter: bumped by IndexAttr and
	// by every effective mutation. A cheap has-anything-changed probe for
	// diagnostics and tests — the plan cache keys on statsVersion below,
	// and the durability layer consumes onMutation, not this counter.
	idxEpoch int64
	// statsVersion is the coarser planner-facing epoch: it bumps only when
	// a planner-visible count (total nodes/edges, a label's cardinality, an
	// edge type's cardinality) has drifted materially since the last bump,
	// or when IndexAttr creates a new access path. Plan caches key on it,
	// so write-heavy workloads whose store size stays roughly stable keep
	// their cached plans (stats.go).
	statsVersion  int64
	statsBase     statsSnapshot
	histMu        sync.Mutex
	histCache     map[degreeKey]cachedHistogram
	// onMutation observes every effective mutation under the write lock
	// (SetMutationHook); the durability layer tees writes into its WAL here.
	onMutation func(Mutation)

	nextNode NodeID
	nextEdge EdgeID

	mergeHits int64 // how many MergeNode calls matched an existing node

	// queryCache anchors engine-level derived state to the store (see
	// QueryCache); opaque to the graph package.
	queryCacheOnce sync.Once
	queryCache     any
}

// New creates an empty store with a property index on "name" semantics
// already provided by the dedicated name index. Additional attribute
// indexes can be requested with IndexAttr.
func New() *Store {
	s := &Store{
		nodes:         make(map[NodeID]*Node),
		edges:         make(map[EdgeID]*Edge),
		out:           make(map[NodeID][]EdgeID),
		in:            make(map[NodeID][]EdgeID),
		byKey:         make(map[string]NodeID),
		byType:        make(map[string]map[NodeID]struct{}),
		byName:        make(map[string]map[NodeID]struct{}),
		propIdx:       make(map[string]map[string]map[NodeID]struct{}),
		typeAttr:      make(map[string]map[NodeID]struct{}),
		indexed:       make(map[string]bool),
		edgeKey:       make(map[string]EdgeID),
		edgeTypeCount: make(map[string]int),
		statsVersion:  1,
	}
	s.rebaseStatsLocked()
	return s
}

// QueryCache returns the store-scoped slot higher layers use to share
// derived state across consumers of one store — the Cypher engine keeps
// its compiled-plan cache here, so every engine over a store shares
// plans. init runs at most once per store; the value's lifetime is the
// store's, so caches can never outlive (or leak past) their graph.
func (s *Store) QueryCache(init func() any) any {
	s.queryCacheOnce.Do(func() { s.queryCache = init() })
	return s.queryCache
}

func nodeKey(typ, name string) string { return typ + "\x00" + name }

func edgeKeyOf(from NodeID, typ string, to NodeID) string {
	return fmt.Sprintf("%d\x00%s\x00%d", from, typ, to)
}

func typeAttrKey(typ, key, val string) string { return typ + "\x00" + key + "\x00" + val }

// IndexAttr enables an index on the given attribute key. Existing nodes
// are back-filled.
func (s *Store) IndexAttr(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.indexed[key] {
		return
	}
	s.indexed[key] = true
	s.idxEpoch++
	// A new access path always changes what the planner may pick: bump the
	// planner-facing stats version unconditionally.
	s.bumpStatsLocked()
	s.propIdx[key] = make(map[string]map[NodeID]struct{})
	for id, n := range s.nodes {
		if v, ok := n.Attrs[key]; ok {
			s.propIdxAdd(key, v, id)
			s.typeAttrAdd(n.Type, key, v, id)
		}
	}
}

func (s *Store) typeAttrAdd(typ, key, val string, id NodeID) {
	k := typeAttrKey(typ, key, val)
	set, ok := s.typeAttr[k]
	if !ok {
		set = make(map[NodeID]struct{})
		s.typeAttr[k] = set
	}
	set[id] = struct{}{}
}

func (s *Store) typeAttrDel(typ, key, val string, id NodeID) {
	k := typeAttrKey(typ, key, val)
	if set, ok := s.typeAttr[k]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(s.typeAttr, k)
		}
	}
}

func (s *Store) propIdxAdd(key, val string, id NodeID) {
	m := s.propIdx[key]
	set, ok := m[val]
	if !ok {
		set = make(map[NodeID]struct{})
		m[val] = set
	}
	set[id] = struct{}{}
}

func (s *Store) propIdxDel(key, val string, id NodeID) {
	if set, ok := s.propIdx[key][val]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(s.propIdx[key], val)
		}
	}
}

// MergeNode inserts a node or returns the existing node with exactly the
// same (type, name), implementing the paper's storage-time merge rule:
// "we only merge nodes with exactly the same description text". Attributes
// of an existing node are augmented (new keys added, existing keys kept —
// first writer wins, preventing early deletion of information).
func (s *Store) MergeNode(typ, name string, attrs map[string]string) (NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := nodeKey(typ, name)
	if id, ok := s.byKey[key]; ok {
		s.mergeHits++
		n := s.nodes[id]
		augmented := false
		for k, v := range attrs {
			if _, exists := n.Attrs[k]; !exists {
				if n.Attrs == nil {
					n.Attrs = make(map[string]string)
				}
				n.Attrs[k] = v
				augmented = true
				if s.indexed[k] {
					s.propIdxAdd(k, v, id)
					s.typeAttrAdd(n.Type, k, v, id)
				}
			}
		}
		if augmented {
			s.noteMutation(Mutation{Op: OpMergeNode, Type: typ, Name: name, Attrs: attrs})
		}
		return id, false
	}
	s.nextNode++
	id := s.nextNode
	n := &Node{ID: id, Type: typ, Name: name}
	if len(attrs) > 0 {
		n.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			n.Attrs[k] = v
			if s.indexed[k] {
				s.propIdxAdd(k, v, id)
				s.typeAttrAdd(typ, k, v, id)
			}
		}
	}
	s.nodes[id] = n
	s.byKey[key] = id
	if s.byType[typ] == nil {
		s.byType[typ] = make(map[NodeID]struct{})
	}
	s.byType[typ][id] = struct{}{}
	if s.byName[name] == nil {
		s.byName[name] = make(map[NodeID]struct{})
	}
	s.byName[name][id] = struct{}{}
	s.noteMutation(Mutation{Op: OpMergeNode, Type: typ, Name: name, Attrs: attrs})
	return id, true
}

// AddEdge inserts a directed edge, deduplicating identical (from, type, to)
// triples: re-adding merges attributes like MergeNode. Returns the edge ID
// and whether a new edge was created.
func (s *Store) AddEdge(from NodeID, typ string, to NodeID, attrs map[string]string) (EdgeID, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[from]; !ok {
		return 0, false, fmt.Errorf("graph: AddEdge: unknown source node %d", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return 0, false, fmt.Errorf("graph: AddEdge: unknown target node %d", to)
	}
	ek := edgeKeyOf(from, typ, to)
	if id, ok := s.edgeKey[ek]; ok {
		e := s.edges[id]
		augmented := false
		for k, v := range attrs {
			if _, exists := e.Attrs[k]; !exists {
				if e.Attrs == nil {
					e.Attrs = make(map[string]string)
				}
				e.Attrs[k] = v
				augmented = true
			}
		}
		if augmented {
			s.noteMutation(Mutation{Op: OpAddEdge, From: from, Type: typ, To: to, Attrs: attrs})
		}
		return id, false, nil
	}
	s.nextEdge++
	id := s.nextEdge
	e := &Edge{ID: id, Type: typ, From: from, To: to}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			e.Attrs[k] = v
		}
	}
	s.edges[id] = e
	s.edgeKey[ek] = id
	s.out[from] = append(s.out[from], id)
	s.in[to] = append(s.in[to], id)
	s.edgeTypeCount[typ]++
	s.noteMutation(Mutation{Op: OpAddEdge, From: from, Type: typ, To: to, Attrs: attrs})
	return id, true, nil
}

// Node returns a copy of the node (nil if absent). Copies keep callers from
// mutating indexed state behind the store's back.
func (s *Store) Node(id NodeID) *Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.nodes[id]
	if !ok {
		return nil
	}
	return copyNode(n)
}

func copyNode(n *Node) *Node {
	c := *n
	if n.Attrs != nil {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	return &c
}

func copyEdge(e *Edge) *Edge {
	c := *e
	if e.Attrs != nil {
		c.Attrs = make(map[string]string, len(e.Attrs))
		for k, v := range e.Attrs {
			c.Attrs[k] = v
		}
	}
	return &c
}

// Edge returns a copy of the edge (nil if absent).
func (s *Store) Edge(id EdgeID) *Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.edges[id]
	if !ok {
		return nil
	}
	return copyEdge(e)
}

// FindNode returns the node with the exact (type, name), or nil.
func (s *Store) FindNode(typ, name string) *Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if id, ok := s.byKey[nodeKey(typ, name)]; ok {
		return copyNode(s.nodes[id])
	}
	return nil
}

// NodesByName returns all nodes whose Name equals name (any type), sorted
// by ID.
func (s *Store) NodesByName(name string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byName[name])
}

// NodesByType returns all nodes with the given type, sorted by ID.
func (s *Store) NodesByType(typ string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byType[typ])
}

// NodesByAttr returns nodes with attrs[key] == val. If the attribute is
// indexed the lookup is O(result); otherwise it scans.
func (s *Store) NodesByAttr(key, val string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.indexed[key] {
		return s.collect(s.propIdx[key][val])
	}
	var out []*Node
	for _, n := range s.nodes {
		if n.Attrs[key] == val {
			out = append(out, copyNode(n))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *Store) collect(set map[NodeID]struct{}) []*Node {
	out := make([]*Node, 0, len(set))
	for id := range set {
		out = append(out, copyNode(s.nodes[id]))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns the edges incident to id in the given direction, sorted by
// edge ID.
func (s *Store) Edges(id NodeID, dir Direction) []*Edge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []EdgeID
	switch dir {
	case Out:
		ids = s.out[id]
	case In:
		ids = s.in[id]
	case Both:
		ids = append(append([]EdgeID{}, s.out[id]...), s.in[id]...)
	}
	out := make([]*Edge, 0, len(ids))
	sorted := true
	for _, eid := range ids {
		e := copyEdge(s.edges[eid])
		if n := len(out); n > 0 && out[n-1].ID > e.ID {
			sorted = false
		}
		out = append(out, e)
	}
	// Incidence lists grow in edge-ID order, so they are already sorted
	// unless MigrateEdges reparented older edges; only then pay the sort.
	// Edges is the executor's inner loop — expansion calls it per row.
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out
}

// Neighbors returns the distinct nodes adjacent to id in the given
// direction, sorted by ID.
func (s *Store) Neighbors(id NodeID, dir Direction) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[NodeID]struct{})
	add := func(nid NodeID) { seen[nid] = struct{}{} }
	if dir == Out || dir == Both {
		for _, eid := range s.out[id] {
			add(s.edges[eid].To)
		}
	}
	if dir == In || dir == Both {
		for _, eid := range s.in[id] {
			add(s.edges[eid].From)
		}
	}
	return s.collect(seen)
}

// SetAttr sets one attribute on a node, updating indexes.
func (s *Store) SetAttr(id NodeID, key, val string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("graph: SetAttr: unknown node %d", id)
	}
	old, had := n.Attrs[key]
	if had && old == val {
		return nil // no-op write: nothing to invalidate or log
	}
	if had && s.indexed[key] {
		s.propIdxDel(key, old, id)
		s.typeAttrDel(n.Type, key, old, id)
	}
	if n.Attrs == nil {
		n.Attrs = make(map[string]string)
	}
	n.Attrs[key] = val
	if s.indexed[key] {
		s.propIdxAdd(key, val, id)
		s.typeAttrAdd(n.Type, key, val, id)
	}
	s.noteMutation(Mutation{Op: OpSetAttr, Node: id, Key: key, Val: val})
	return nil
}

// DeleteNode removes a node and all incident edges.
func (s *Store) DeleteNode(id NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("graph: DeleteNode: unknown node %d", id)
	}
	for _, eid := range append(append([]EdgeID{}, s.out[id]...), s.in[id]...) {
		s.deleteEdgeLocked(eid)
	}
	delete(s.byKey, nodeKey(n.Type, n.Name))
	delete(s.byType[n.Type], id)
	delete(s.byName[n.Name], id)
	for k, v := range n.Attrs {
		if s.indexed[k] {
			s.propIdxDel(k, v, id)
			s.typeAttrDel(n.Type, k, v, id)
		}
	}
	delete(s.nodes, id)
	delete(s.out, id)
	delete(s.in, id)
	s.noteMutation(Mutation{Op: OpDeleteNode, Node: id})
	return nil
}

// DeleteEdge removes one edge.
func (s *Store) DeleteEdge(id EdgeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.edges[id]; !ok {
		return fmt.Errorf("graph: DeleteEdge: unknown edge %d", id)
	}
	s.deleteEdgeLocked(id)
	s.noteMutation(Mutation{Op: OpDeleteEdge, Edge: id})
	return nil
}

func (s *Store) deleteEdgeLocked(id EdgeID) {
	e, ok := s.edges[id]
	if !ok {
		return
	}
	delete(s.edgeKey, edgeKeyOf(e.From, e.Type, e.To))
	s.out[e.From] = removeEdgeID(s.out[e.From], id)
	s.in[e.To] = removeEdgeID(s.in[e.To], id)
	delete(s.edges, id)
	if s.edgeTypeCount[e.Type]--; s.edgeTypeCount[e.Type] <= 0 {
		delete(s.edgeTypeCount, e.Type)
	}
}

func removeEdgeID(ids []EdgeID, id EdgeID) []EdgeID {
	for i, x := range ids {
		if x == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// MigrateEdges re-points every edge incident to from so it is incident to
// to instead, preserving edge types and attributes and deduplicating
// against existing edges of to. Self-loops created by the migration are
// dropped. Used by the knowledge-fusion stage.
func (s *Store) MigrateEdges(from, to NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.nodes[from]; !ok {
		return fmt.Errorf("graph: MigrateEdges: unknown node %d", from)
	}
	if _, ok := s.nodes[to]; !ok {
		return fmt.Errorf("graph: MigrateEdges: unknown node %d", to)
	}
	outs := append([]EdgeID{}, s.out[from]...)
	ins := append([]EdgeID{}, s.in[from]...)
	if len(outs) == 0 && len(ins) == 0 {
		return nil // nothing incident: no state change to log
	}
	for _, eid := range outs {
		e := s.edges[eid]
		typ, dst, attrs := e.Type, e.To, e.Attrs
		s.deleteEdgeLocked(eid)
		if dst == to || dst == from {
			continue
		}
		s.addEdgeLocked(to, typ, dst, attrs)
	}
	for _, eid := range ins {
		e, ok := s.edges[eid]
		if !ok {
			continue // already removed as an out-edge self pair
		}
		typ, src, attrs := e.Type, e.From, e.Attrs
		s.deleteEdgeLocked(eid)
		if src == to || src == from {
			continue
		}
		s.addEdgeLocked(src, typ, to, attrs)
	}
	// One logical record regardless of fan-in/out: replaying the call
	// reproduces every per-edge delete/re-add deterministically.
	s.noteMutation(Mutation{Op: OpMigrateEdges, From: from, To: to})
	return nil
}

func (s *Store) addEdgeLocked(from NodeID, typ string, to NodeID, attrs map[string]string) {
	ek := edgeKeyOf(from, typ, to)
	if id, ok := s.edgeKey[ek]; ok {
		e := s.edges[id]
		for k, v := range attrs {
			if _, exists := e.Attrs[k]; !exists {
				if e.Attrs == nil {
					e.Attrs = make(map[string]string)
				}
				e.Attrs[k] = v
			}
		}
		return
	}
	s.nextEdge++
	id := s.nextEdge
	e := &Edge{ID: id, Type: typ, From: from, To: to}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			e.Attrs[k] = v
		}
	}
	s.edges[id] = e
	s.edgeKey[ek] = id
	s.out[from] = append(s.out[from], id)
	s.in[to] = append(s.in[to], id)
	s.edgeTypeCount[typ]++
}

// ForEachNode calls fn for every node; iteration stops if fn returns false.
// The callback receives a copy.
func (s *Store) ForEachNode(fn func(*Node) bool) {
	s.mu.RLock()
	ids := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := s.Node(id)
		if n == nil {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// ForEachEdge calls fn for every edge; iteration stops if fn returns false.
func (s *Store) ForEachEdge(fn func(*Edge) bool) {
	s.mu.RLock()
	ids := make([]EdgeID, 0, len(s.edges))
	for id := range s.edges {
		ids = append(ids, id)
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := s.Edge(id)
		if e == nil {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// Stats summarizes store contents.
type Stats struct {
	Nodes       int            `json:"nodes"`
	Edges       int            `json:"edges"`
	NodesByType map[string]int `json:"nodes_by_type"`
	EdgesByType map[string]int `json:"edges_by_type"`
	MergeHits   int64          `json:"merge_hits"`
}

// Stats returns counts by type plus the number of storage-time merges.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Nodes:       len(s.nodes),
		Edges:       len(s.edges),
		NodesByType: make(map[string]int),
		EdgesByType: make(map[string]int),
		MergeHits:   s.mergeHits,
	}
	for _, n := range s.nodes {
		st.NodesByType[n.Type]++
	}
	for _, e := range s.edges {
		st.EdgesByType[e.Type]++
	}
	return st
}

// --- persistence ---

type persistHeader struct {
	Magic    string `json:"magic"`
	Version  int    `json:"version"`
	NextNode NodeID `json:"next_node"`
	NextEdge EdgeID `json:"next_edge"`
	Nodes    int    `json:"nodes"`
	Edges    int    `json:"edges"`
}

const persistMagic = "securitykg-graph"

// Save writes the graph as JSON lines: a header record, then one record
// per node, then one per edge. The format is stable and diff-friendly.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.saveLocked(w)
}

// SaveWithHeader writes hdr's output, then the Save stream, all under one
// read lock — so whatever the header records (the durability layer's WAL
// sequence number) observes exactly the state the snapshot captures: no
// mutation can slip between the two.
func (s *Store) SaveWithHeader(w io.Writer, hdr func(io.Writer) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if hdr != nil {
		if err := hdr(w); err != nil {
			return err
		}
	}
	return s.saveLocked(w)
}

func (s *Store) saveLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := persistHeader{
		Magic: persistMagic, Version: 1,
		NextNode: s.nextNode, NextEdge: s.nextEdge,
		Nodes: len(s.nodes), Edges: len(s.edges),
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("graph: save header: %w", err)
	}
	nids := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		nids = append(nids, id)
	}
	sort.Slice(nids, func(i, j int) bool { return nids[i] < nids[j] })
	for _, id := range nids {
		if err := enc.Encode(s.nodes[id]); err != nil {
			return fmt.Errorf("graph: save node %d: %w", id, err)
		}
	}
	eids := make([]EdgeID, 0, len(s.edges))
	for id := range s.edges {
		eids = append(eids, id)
	}
	sort.Slice(eids, func(i, j int) bool { return eids[i] < eids[j] })
	for _, id := range eids {
		if err := enc.Encode(s.edges[id]); err != nil {
			return fmt.Errorf("graph: save edge %d: %w", id, err)
		}
	}
	return bw.Flush()
}

// Load reads a graph previously written by Save into an empty store.
func Load(r io.Reader) (*Store, error) {
	s := New()
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr persistHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("graph: load header: %w", err)
	}
	if hdr.Magic != persistMagic {
		return nil, errors.New("graph: not a securitykg graph file")
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr.Version)
	}
	for i := 0; i < hdr.Nodes; i++ {
		var n Node
		if err := dec.Decode(&n); err != nil {
			return nil, fmt.Errorf("graph: load node %d/%d: %w", i, hdr.Nodes, err)
		}
		if _, dup := s.nodes[n.ID]; dup {
			return nil, fmt.Errorf("graph: load: duplicate node id %d", n.ID)
		}
		if _, dup := s.byKey[nodeKey(n.Type, n.Name)]; dup {
			return nil, fmt.Errorf("graph: load: duplicate node (%s, %q)", n.Type, n.Name)
		}
		nc := n
		s.nodes[n.ID] = &nc
		s.byKey[nodeKey(n.Type, n.Name)] = n.ID
		if s.byType[n.Type] == nil {
			s.byType[n.Type] = make(map[NodeID]struct{})
		}
		s.byType[n.Type][n.ID] = struct{}{}
		if s.byName[n.Name] == nil {
			s.byName[n.Name] = make(map[NodeID]struct{})
		}
		s.byName[n.Name][n.ID] = struct{}{}
	}
	for i := 0; i < hdr.Edges; i++ {
		var e Edge
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("graph: load edge %d/%d: %w", i, hdr.Edges, err)
		}
		if _, dup := s.edges[e.ID]; dup {
			return nil, fmt.Errorf("graph: load: duplicate edge id %d", e.ID)
		}
		if _, ok := s.nodes[e.From]; !ok {
			return nil, fmt.Errorf("graph: load: edge %d references unknown node %d", e.ID, e.From)
		}
		if _, ok := s.nodes[e.To]; !ok {
			return nil, fmt.Errorf("graph: load: edge %d references unknown node %d", e.ID, e.To)
		}
		ec := e
		s.edges[e.ID] = &ec
		s.edgeKey[edgeKeyOf(e.From, e.Type, e.To)] = e.ID
		s.out[e.From] = append(s.out[e.From], e.ID)
		s.in[e.To] = append(s.in[e.To], e.ID)
		s.edgeTypeCount[e.Type]++
	}
	s.nextNode = hdr.NextNode
	s.nextEdge = hdr.NextEdge
	s.rebaseStatsLocked()
	return s, nil
}

// SaveFile persists the graph to path atomically (write temp + rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("graph: save file: %w", err)
	}
	if err := s.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("graph: close: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: load file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
