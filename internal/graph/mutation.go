package graph

import "fmt"

// This file defines the logical mutation log the durability layer hangs
// off the store: every state-changing public operation describes itself
// as a Mutation, and a hook installed with SetMutationHook observes the
// sequence under the store's write lock — in exactly the order the
// mutations applied. Replaying the same Mutation sequence against the
// same starting state reproduces the store byte-for-byte (including
// NextNode/NextEdge allocation), which is what makes the write-ahead log
// in internal/storage a correct recovery mechanism.

// MutationOp names one replayable store operation.
type MutationOp string

const (
	OpMergeNode    MutationOp = "merge_node"
	OpAddEdge      MutationOp = "add_edge"
	OpSetAttr      MutationOp = "set_attr"
	OpDeleteNode   MutationOp = "delete_node"
	OpDeleteEdge   MutationOp = "delete_edge"
	OpMigrateEdges MutationOp = "migrate_edges"

	// Transaction markers. They carry no payload and mutate nothing;
	// the WAL writes them around a committed multi-mutation transaction
	// so recovery can replay the group atomically (mvcc.go). A
	// tx_rollback record never appears in logs this code writes —
	// rolled-back transactions are never logged — but recovery accepts
	// it (discarding the open group) for forward compatibility.
	OpTxBegin    MutationOp = "tx_begin"
	OpTxCommit   MutationOp = "tx_commit"
	OpTxRollback MutationOp = "tx_rollback"
)

// Mutation is one logical store mutation, carrying the arguments of the
// public call that produced it (not its effect): replay re-issues the
// call, and because every store operation is deterministic given the
// prior state, the effect reproduces exactly. Fields are a union across
// ops; unused fields are zero.
type Mutation struct {
	Op    MutationOp
	Type  string            // merge_node: node type; add_edge: edge type
	Name  string            // merge_node: node name
	Attrs map[string]string // merge_node / add_edge: input attributes
	From  NodeID            // add_edge source; migrate_edges from
	To    NodeID            // add_edge target; migrate_edges to
	Node  NodeID            // set_attr / delete_node target
	Edge  EdgeID            // delete_edge target
	Key   string            // set_attr key
	Val   string            // set_attr value
}

// SetMutationHook installs fn, called under the store's write lock after
// every effective mutation (calls that change no state — a MergeNode hit
// adding no attributes, a SetAttr writing the value already present — do
// not fire). The hook must be fast and must not call back into the
// store or retain the Attrs map past its return; the write-ahead log
// encodes the record inside the callback. Passing nil uninstalls.
func (s *Store) SetMutationHook(fn func(Mutation)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onMutation = fn
}

// noteMutation records one effective mutation: the per-mutation epoch
// bumps, the coarser planner-facing stats version bumps only if a
// planner-visible count has drifted materially (stats.go), then the
// durability hook (if any) observes the mutation. Callers hold the
// write lock.
func (s *Store) noteMutation(m Mutation) {
	s.idxEpoch++
	if s.bulk == 0 && s.statsMaterialLocked() {
		s.bumpStatsLocked()
	}
	if s.onMutation != nil {
		if tx := s.curTx; tx != nil {
			// Transactional write: buffer instead of logging — the group
			// reaches the hook only if the transaction commits. Attrs are
			// cloned because the hook contract lets the caller reuse the
			// map after the call returns.
			tx.walBuf = append(tx.walBuf, cloneMutation(m))
			return
		}
		s.onMutation(m)
	}
}

// cloneMutation deep-copies the one reference field, Attrs.
func cloneMutation(m Mutation) Mutation {
	if len(m.Attrs) > 0 {
		attrs := make(map[string]string, len(m.Attrs))
		for k, v := range m.Attrs {
			attrs[k] = v
		}
		m.Attrs = attrs
	}
	return m
}

// beginBulkLocked opens one bulk-mode bracket. Callers hold mu.
func (s *Store) beginBulkLocked() { s.bulk++ }

// endBulkLocked closes one bulk-mode bracket; closing the outermost
// seals the deferred work: one adjacency rebuild over everything the
// bracket inserted, one stats materiality judgement. Callers hold mu.
func (s *Store) endBulkLocked() {
	if s.bulk--; s.bulk > 0 {
		return
	}
	if s.adj.pending > 0 {
		s.rebuildAdjLocked()
	}
	if s.statsMaterialLocked() {
		s.bumpStatsLocked()
	}
}

// BeginBulk opens an external bulk-load bracket (server boot ingest,
// replication catch-up): per-mutation adjacency compaction and stats
// materiality checks are deferred until the matching EndBulk. Brackets
// nest; each BeginBulk must be paired with exactly one EndBulk.
func (s *Store) BeginBulk() {
	s.mu.Lock()
	s.beginBulkLocked()
	s.mu.Unlock()
}

// EndBulk closes a BeginBulk bracket, sealing (one adjacency rebuild +
// one stats materiality judgement) when the outermost bracket closes.
func (s *Store) EndBulk() {
	s.mu.Lock()
	s.endBulkLocked()
	s.mu.Unlock()
}

// ApplyStream replays the mutation sequence next yields (until it
// reports false) with bulk economics: the per-mutation adjacency
// compaction and stats-drift checks Apply pays are deferred, and the
// stream seals with one adjacency rebuild and one stats materiality
// judgement. State afterwards is identical to the equivalent Apply
// loop (adjacency layout and stats versioning are not part of logical
// state); recovery uses it to fold a WAL tail straight off the
// scanner without materializing the record list. On error, mutations
// before the failing one remain applied and the returned count names
// how many succeeded.
func (s *Store) ApplyStream(next func() (Mutation, bool)) (int, error) {
	s.mu.Lock()
	s.beginBulkLocked()
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.endBulkLocked()
		s.mu.Unlock()
	}()
	applied := 0
	for {
		m, ok := next()
		if !ok {
			return applied, nil
		}
		if err := s.Apply(m); err != nil {
			return applied, err
		}
		applied++
	}
}

// ApplyBatch applies a mutation slice as one bulk transaction: the
// whole batch reaches the durability hook as a single
// tx_begin/.../tx_commit group (one group-committed WAL append), pays
// one stats materiality judgement, and seals adjacency once — the same
// economics ApplyStream gives recovery, plus atomicity. On error the
// transaction rolls back (nothing is applied or logged) and the
// returned index names the failing mutation.
func (s *Store) ApplyBatch(ms []Mutation) (int, error) {
	tx := s.BeginTx()
	tx.SetBulk()
	for i, m := range ms {
		if err := tx.Apply(m); err != nil {
			tx.Rollback()
			return i, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return len(ms), nil
}

// Apply re-issues one mutation on the Tx write surface, mirroring
// Store.Apply's dispatch. Transaction markers are rejected: a Tx is
// itself the group boundary.
func (tx *Tx) Apply(m Mutation) error {
	switch m.Op {
	case OpMergeNode:
		tx.MergeNode(m.Type, m.Name, m.Attrs)
		return nil
	case OpAddEdge:
		_, _, err := tx.AddEdge(m.From, m.Type, m.To, m.Attrs)
		return err
	case OpSetAttr:
		return tx.SetAttr(m.Node, m.Key, m.Val)
	case OpDeleteNode:
		return tx.DeleteNode(m.Node)
	case OpDeleteEdge:
		return tx.DeleteEdge(m.Edge)
	case OpMigrateEdges:
		return tx.MigrateEdges(m.From, m.To)
	}
	return fmt.Errorf("graph: Tx.Apply: unsupported mutation op %q", m.Op)
}

// Apply replays one mutation through the corresponding public operation.
// It is how recovery turns a surviving WAL prefix back into state; the
// caller installs the mutation hook only after replay, so replay itself
// is never re-logged.
func (s *Store) Apply(m Mutation) error {
	switch m.Op {
	case OpMergeNode:
		s.MergeNode(m.Type, m.Name, m.Attrs)
		return nil
	case OpAddEdge:
		_, _, err := s.AddEdge(m.From, m.Type, m.To, m.Attrs)
		return err
	case OpSetAttr:
		return s.SetAttr(m.Node, m.Key, m.Val)
	case OpDeleteNode:
		return s.DeleteNode(m.Node)
	case OpDeleteEdge:
		return s.DeleteEdge(m.Edge)
	case OpMigrateEdges:
		return s.MigrateEdges(m.From, m.To)
	case OpTxBegin, OpTxCommit, OpTxRollback:
		// Markers mutate nothing. Recovery's committed-transaction fold
		// consumes them before replay; tolerate them here so a caller
		// replaying a raw record stream doesn't fail on a marker.
		return nil
	}
	return fmt.Errorf("graph: Apply: unknown mutation op %q", m.Op)
}
