package graph

import (
	"fmt"
	"testing"
)

// TestApplyBatchSingleWALGroup: a batch applies as ONE write-ahead-log
// transaction group — a single tx_begin/tx_commit pair around the
// mutations, not a bare record per mutation — and moves the planner
// stats version at most once, however large the batch.
func TestApplyBatchSingleWALGroup(t *testing.T) {
	s := New()
	var log []MutationOp
	s.SetMutationHook(func(m Mutation) { log = append(log, m.Op) })

	const n = 200
	ms := make([]Mutation, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, Mutation{Op: OpMergeNode, Type: "Host", Name: fmt.Sprintf("h%d", i)})
	}
	sv0 := s.StatsVersion()
	applied, err := s.ApplyBatch(ms)
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if applied != n {
		t.Fatalf("applied = %d, want %d", applied, n)
	}

	if len(log) != n+2 || log[0] != OpTxBegin || log[len(log)-1] != OpTxCommit {
		t.Fatalf("log has %d records, first %q last %q; want %d wrapped in tx_begin/tx_commit",
			len(log), log[0], log[len(log)-1], n+2)
	}
	begins, commits := 0, 0
	for _, op := range log {
		switch op {
		case OpTxBegin:
			begins++
		case OpTxCommit:
			commits++
		}
	}
	if begins != 1 || commits != 1 {
		t.Errorf("tx markers: %d begins, %d commits; want exactly one group", begins, commits)
	}
	// 200 nodes from empty is unquestionably material — but it is ONE
	// judgement, at commit, not 200.
	if bumps := s.StatsVersion() - sv0; bumps != 1 {
		t.Errorf("StatsVersion moved %d times during batch, want exactly 1", bumps)
	}
	if got := s.CountNodes(); got != n {
		t.Errorf("CountNodes = %d, want %d", got, n)
	}
}

// TestApplyBatchAtomic: a batch containing a failing mutation rolls the
// whole batch back — nothing reaches the store or the WAL hook, and the
// failing index is reported.
func TestApplyBatchAtomic(t *testing.T) {
	s := New()
	var log []MutationOp
	s.SetMutationHook(func(m Mutation) { log = append(log, m.Op) })

	ms := []Mutation{
		{Op: OpMergeNode, Type: "Host", Name: "good"},
		{Op: OpSetAttr, Node: NodeID(1 << 30), Key: "k", Val: "v"}, // no such node
		{Op: OpMergeNode, Type: "Host", Name: "never"},
	}
	idx, err := s.ApplyBatch(ms)
	if err == nil {
		t.Fatal("ApplyBatch succeeded with an invalid mutation")
	}
	if idx != 1 {
		t.Errorf("failing index = %d, want 1", idx)
	}
	if len(log) != 0 {
		t.Errorf("WAL hook observed %v after rollback, want nothing", log)
	}
	if got := s.CountNodes(); got != 0 {
		t.Errorf("CountNodes = %d after rollback, want 0", got)
	}
	if n := s.FindNode("Host", "good"); n != nil {
		t.Errorf("node %q survived the rollback", "good")
	}
}

// TestBulkBracketDefersSeal: inside a BeginBulk/EndBulk bracket the
// stats version holds still no matter how many mutations land; brackets
// nest (a bulk transaction inside a load bracket seals nothing on its
// own); closing the outermost bracket runs the single deferred
// judgement.
func TestBulkBracketDefersSeal(t *testing.T) {
	s := New()
	sv0 := s.StatsVersion()

	s.BeginBulk()
	ids := make([]NodeID, 0, 100)
	for i := 0; i < 100; i++ {
		id, _ := s.MergeNode("Host", fmt.Sprintf("h%d", i), nil)
		ids = append(ids, id)
	}
	if sv := s.StatsVersion(); sv != sv0 {
		t.Fatalf("StatsVersion moved to %d mid-bracket, want %d", sv, sv0)
	}

	// Nested bracket: a bulk transaction inside the load. Its commit
	// closes the INNER bracket only — still no seal.
	tx := s.BeginTx()
	tx.SetBulk()
	for i := 0; i < 50; i++ {
		if _, _, err := tx.AddEdge(ids[i], "talks_to", ids[i+1], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if sv := s.StatsVersion(); sv != sv0 {
		t.Fatalf("StatsVersion moved to %d after nested commit, want %d (outer bracket still open)", sv, sv0)
	}

	s.EndBulk()
	if bumps := s.StatsVersion() - sv0; bumps != 1 {
		t.Errorf("StatsVersion moved %d times at seal, want exactly 1", bumps)
	}
	// The deferred adjacency seal must leave reads correct.
	if got := len(s.Edges(ids[0], Out)); got != 1 {
		t.Errorf("Edges(ids[0], Out) = %d, want 1", got)
	}
}

// TestDriftRefreshCooldown is the regression test for drift-refresh
// thrash: a key whose observed cardinality keeps diverging from the
// estimate (persistent skew a histogram mean cannot express — a hub
// node, say) trips refresh after refresh, but on a store whose shape
// has NOT changed every recomputation yields the identical histogram.
// Those trips must be suppressed: repeated analyzed runs of one skewed
// query bump StatsVersion at most once.
func TestDriftRefreshCooldown(t *testing.T) {
	s := New()
	hub, _ := s.MergeNode("Host", "hub", nil)
	for i := 0; i < 20; i++ {
		leaf, _ := s.MergeNode("Host", fmt.Sprintf("leaf%d", i), nil)
		if _, _, err := s.AddEdge(hub, "talks_to", leaf, nil); err != nil {
			t.Fatal(err)
		}
	}

	key := DriftKey{Label: "Host", EdgeType: "talks_to", Dir: Out}
	sv0 := s.StatsVersion()
	// 5 full trips' worth of observations on a static store.
	for i := 0; i < 5*driftRefreshAfter; i++ {
		s.RecordEstimateDrift(key, 1.0, 20.0)
	}
	if bumps := s.StatsVersion() - sv0; bumps != 1 {
		t.Fatalf("StatsVersion moved %d times across repeated drift on a static store, want exactly 1", bumps)
	}
	var st DriftStat
	for _, d := range s.DriftStats() {
		if d.Key == key {
			st = d
		}
	}
	if st.Refreshes != 1 {
		t.Errorf("Refreshes = %d, want 1", st.Refreshes)
	}
	if st.Suppressed != 4 {
		t.Errorf("Suppressed = %d, want 4", st.Suppressed)
	}

	// The cooldown is not a permanent mute: once the store's shape
	// actually changes for the key, the next trip refreshes again.
	for i := 0; i < 30; i++ {
		leaf, _ := s.MergeNode("Host", fmt.Sprintf("extra%d", i), nil)
		if _, _, err := s.AddEdge(hub, "talks_to", leaf, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < driftRefreshAfter; i++ {
		s.RecordEstimateDrift(key, 1.0, 50.0)
	}
	for _, d := range s.DriftStats() {
		if d.Key == key {
			st = d
		}
	}
	if st.Refreshes != 2 {
		t.Errorf("Refreshes after shape change = %d, want 2", st.Refreshes)
	}
}
