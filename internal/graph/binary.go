package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"sort"
)

// Binary graph codec: the compact on-disk form the durability layer uses
// for checkpoints. Layout (all integers unsigned varints unless noted):
//
//	magic   8 raw bytes "skggrf1\n"
//	version uvarint (currently 1)
//	strings uvarint count, then count strings (uvarint len + raw bytes) —
//	        the sorted set of every label, edge type, and attribute key
//	        in the graph. References below are 1-based indexes into this
//	        section; ref 0 means "".
//	nextNode, nextEdge uvarint ID allocators
//	nodes   uvarint count, then per node (ascending ID):
//	        uvarint id · uvarint typeRef · string name ·
//	        uvarint attrCount · attrCount × (uvarint keyRef · string val)
//	        with attrs sorted by key
//	edges   uvarint count, then per edge (ascending ID):
//	        uvarint id · uvarint typeRef · uvarint from · uvarint to ·
//	        attrs as for nodes
//	crc     4 raw bytes, little-endian CRC-32 (IEEE) of everything above
//
// Dictionary references replace every repeated vocabulary string with a
// 1–2 byte varint; names and attribute values (high-cardinality) stay
// inline. Because the string section is sorted and nodes/edges/attrs are
// emitted in sorted order, the bytes are a pure function of the logical
// graph content — independent of insertion or intern order — which is
// what keeps recovery byte-for-byte reproducible (see TestBinaryDeterminism).
const binaryMagic = "skggrf1\n"

const (
	binaryVersion = 1
	// maxBinaryStr bounds one string in the stream so a corrupt length
	// prefix cannot demand a multi-gigabyte allocation. It must stay far
	// above the WAL's per-record bound: a snapshot has to represent any
	// in-memory store, including attr values too large to ever log
	// (durability re-bases over failed oversize appends via snapshots).
	maxBinaryStr = 1 << 30
)

// --- writer ---

type binWriter struct {
	w   *bufio.Writer
	crc hash.Hash32
	tmp [binary.MaxVarintLen64]byte
	err error
}

func newBinWriter(w io.Writer) *binWriter {
	return &binWriter{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

func (b *binWriter) bytes(p []byte) {
	if b.err != nil {
		return
	}
	if _, err := b.w.Write(p); err != nil {
		b.err = err
		return
	}
	b.crc.Write(p)
}

func (b *binWriter) uvarint(v uint64) {
	n := binary.PutUvarint(b.tmp[:], v)
	b.bytes(b.tmp[:n])
}

func (b *binWriter) str(s string) {
	b.uvarint(uint64(len(s)))
	if b.err != nil {
		return
	}
	if _, err := b.w.WriteString(s); err != nil {
		b.err = err
		return
	}
	b.crc.Write([]byte(s))
}

// finish appends the CRC trailer (not itself summed) and flushes.
func (b *binWriter) finish() error {
	if b.err != nil {
		return b.err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], b.crc.Sum32())
	if _, err := b.w.Write(tail[:]); err != nil {
		return err
	}
	return b.w.Flush()
}

// --- reader ---

type binReader struct {
	r   *bufio.Reader
	crc hash.Hash32
}

func newBinReader(r *bufio.Reader) *binReader {
	return &binReader{r: r, crc: crc32.NewIEEE()}
}

// ReadByte feeds the running CRC; it is what binary.ReadUvarint consumes.
func (b *binReader) ReadByte() (byte, error) {
	c, err := b.r.ReadByte()
	if err == nil {
		b.crc.Write([]byte{c})
	}
	return c, err
}

func (b *binReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(b)
}

func (b *binReader) str() (string, error) {
	n, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxBinaryStr {
		return "", fmt.Errorf("graph: load binary: string length %d exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(b.r, p); err != nil {
		return "", err
	}
	b.crc.Write(p)
	return string(p), nil
}

func (b *binReader) id() (int64, error) {
	v, err := b.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64 {
		return 0, fmt.Errorf("graph: load binary: id %d overflows", v)
	}
	return int64(v), nil
}

// checkCRC reads the raw 4-byte trailer and compares it to the running
// sum over everything decoded so far.
func (b *binReader) checkCRC() error {
	var tail [4]byte
	if _, err := io.ReadFull(b.r, tail[:]); err != nil {
		return fmt.Errorf("graph: load binary: crc trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != b.crc.Sum32() {
		return fmt.Errorf("graph: load binary: crc mismatch")
	}
	return nil
}

// --- save ---

// SaveBinary writes the graph in the binary codec. The output is
// deterministic for identical logical content (see the format comment);
// Load sniffs the magic and reads either codec.
func (s *Store) SaveBinary(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.saveBinaryLocked(w)
}

// SaveBinaryWithHeader is SaveBinary's analogue of SaveWithHeader: hdr
// runs under the same read lock, so a WAL sequence number written there
// observes exactly the snapshotted state.
func (s *Store) SaveBinaryWithHeader(w io.Writer, hdr func(io.Writer) error) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if hdr != nil {
		if err := hdr(w); err != nil {
			return err
		}
	}
	return s.saveBinaryLocked(w)
}

func (s *Store) saveBinaryLocked(w io.Writer) error {
	// Collect the live vocabulary. Sorting (not intern order) is what
	// makes the byte stream reproducible across differently-built stores.
	vocab := make(map[string]struct{})
	for _, rec := range s.nodes {
		vocab[rec.n.Type] = struct{}{}
		for k := range rec.n.Attrs {
			vocab[k] = struct{}{}
		}
	}
	for _, rec := range s.edges {
		vocab[rec.e.Type] = struct{}{}
		for k := range rec.e.Attrs {
			vocab[k] = struct{}{}
		}
	}
	delete(vocab, "") // ref 0 is implicit
	strs := make([]string, 0, len(vocab))
	for v := range vocab {
		strs = append(strs, v)
	}
	sort.Strings(strs)
	refs := make(map[string]uint64, len(strs)+1)
	refs[""] = 0
	for i, v := range strs {
		refs[v] = uint64(i + 1)
	}

	b := newBinWriter(w)
	b.bytes([]byte(binaryMagic))
	b.uvarint(binaryVersion)
	b.uvarint(uint64(len(strs)))
	for _, v := range strs {
		b.str(v)
	}
	b.uvarint(uint64(s.nextNode))
	b.uvarint(uint64(s.nextEdge))

	writeAttrs := func(attrs map[string]string) {
		b.uvarint(uint64(len(attrs)))
		keys := make([]string, 0, len(attrs))
		for k := range attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.uvarint(refs[k])
			b.str(attrs[k])
		}
	}

	b.uvarint(uint64(len(s.nodes)))
	for _, id := range s.sortedNodeIDsLocked() {
		n := s.nodes[id].n
		b.uvarint(uint64(n.ID))
		b.uvarint(refs[n.Type])
		b.str(n.Name)
		writeAttrs(n.Attrs)
	}
	b.uvarint(uint64(len(s.edges)))
	for _, id := range s.sortedEdgeIDsLocked() {
		e := s.edges[id].e
		b.uvarint(uint64(e.ID))
		b.uvarint(refs[e.Type])
		b.uvarint(uint64(e.From))
		b.uvarint(uint64(e.To))
		writeAttrs(e.Attrs)
	}
	if b.err != nil {
		return fmt.Errorf("graph: save binary: %w", b.err)
	}
	if err := b.finish(); err != nil {
		return fmt.Errorf("graph: save binary: %w", err)
	}
	return nil
}

// --- load ---

// loadBinary decodes a binary stream whose magic Load has already
// sniffed (but not consumed).
func loadBinary(br *bufio.Reader) (*Store, error) {
	b := newBinReader(br)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: load binary: bad magic")
	}
	b.crc.Write(magic)
	ver, err := b.uvarint()
	if err != nil {
		return nil, fmt.Errorf("graph: load binary: version: %w", err)
	}
	if ver != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", ver)
	}
	nstrs, err := b.uvarint()
	if err != nil {
		return nil, fmt.Errorf("graph: load binary: string count: %w", err)
	}
	strs := make([]string, 1, minU64(nstrs+1, 4096))
	strs[0] = ""
	for i := uint64(0); i < nstrs; i++ {
		v, err := b.str()
		if err != nil {
			return nil, fmt.Errorf("graph: load binary: string %d/%d: %w", i, nstrs, err)
		}
		strs = append(strs, v)
	}
	ref := func(r uint64) (string, error) {
		if r >= uint64(len(strs)) {
			return "", fmt.Errorf("graph: load binary: string ref %d out of range", r)
		}
		return strs[r], nil
	}
	readAttrs := func() (map[string]string, error) {
		n, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		attrs := make(map[string]string, minU64(n, 256))
		for i := uint64(0); i < n; i++ {
			kr, err := b.uvarint()
			if err != nil {
				return nil, err
			}
			k, err := ref(kr)
			if err != nil {
				return nil, err
			}
			v, err := b.str()
			if err != nil {
				return nil, err
			}
			attrs[k] = v
		}
		return attrs, nil
	}

	nextNode, err := b.id()
	if err != nil {
		return nil, fmt.Errorf("graph: load binary: next node: %w", err)
	}
	nextEdge, err := b.id()
	if err != nil {
		return nil, fmt.Errorf("graph: load binary: next edge: %w", err)
	}

	s := New()
	nNodes, err := b.uvarint()
	if err != nil {
		return nil, fmt.Errorf("graph: load binary: node count: %w", err)
	}
	for i := uint64(0); i < nNodes; i++ {
		var n Node
		id, err := b.id()
		if err == nil {
			n.ID = NodeID(id)
			var tr uint64
			if tr, err = b.uvarint(); err == nil {
				if n.Type, err = ref(tr); err == nil {
					if n.Name, err = b.str(); err == nil {
						n.Attrs, err = readAttrs()
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("graph: load binary: node %d/%d: %w", i, nNodes, err)
		}
		if err := s.loadNode(n); err != nil {
			return nil, err
		}
	}
	nEdges, err := b.uvarint()
	if err != nil {
		return nil, fmt.Errorf("graph: load binary: edge count: %w", err)
	}
	for i := uint64(0); i < nEdges; i++ {
		var e Edge
		id, err := b.id()
		if err == nil {
			e.ID = EdgeID(id)
			var tr uint64
			if tr, err = b.uvarint(); err == nil {
				if e.Type, err = ref(tr); err == nil {
					var from, to int64
					if from, err = b.id(); err == nil {
						if to, err = b.id(); err == nil {
							e.From, e.To = NodeID(from), NodeID(to)
							e.Attrs, err = readAttrs()
						}
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("graph: load binary: edge %d/%d: %w", i, nEdges, err)
		}
		if err := s.loadEdge(e); err != nil {
			return nil, err
		}
	}
	if err := b.checkCRC(); err != nil {
		return nil, err
	}
	s.finishLoad(NodeID(nextNode), EdgeID(nextEdge))
	return s, nil
}

func minU64(v uint64, lim int) int {
	if v > uint64(lim) {
		return lim
	}
	return int(v)
}
