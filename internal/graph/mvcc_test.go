package graph

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func saveBytesOf(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotSeesStateAtOpen(t *testing.T) {
	s := New()
	s.IndexAttr("sev")
	a, _ := s.MergeNode("CVE", "a", map[string]string{"sev": "high"})
	b, _ := s.MergeNode("CVE", "b", nil)
	e, _, err := s.AddEdge(a, "affects", b, nil)
	if err != nil {
		t.Fatal(err)
	}

	sn := s.Snapshot()
	defer sn.Release()

	// Mutate after the snapshot: attr change, node delete, new node+edge.
	if err := s.SetAttr(a, "sev", "low"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteNode(b); err != nil {
		t.Fatal(err)
	}
	c, _ := s.MergeNode("CVE", "c", nil)
	if _, _, err := s.AddEdge(a, "affects", c, nil); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the original world.
	if got := sn.Node(a).Attrs["sev"]; got != "high" {
		t.Errorf("snapshot sees sev=%q, want high", got)
	}
	if sn.Node(b) == nil {
		t.Error("snapshot lost deleted node b")
	}
	if sn.Node(c) != nil {
		t.Error("snapshot sees node c created after open")
	}
	if sn.Edge(e) == nil {
		t.Error("snapshot lost edge deleted via DeleteNode(b)")
	}
	if got := len(sn.Edges(a, Out)); got != 1 {
		t.Errorf("snapshot Edges(a) = %d, want 1", got)
	}
	if got := len(sn.AllNodeIDs()); got != 2 {
		t.Errorf("snapshot AllNodeIDs = %d, want 2", got)
	}
	if sn.FindNode("CVE", "b") == nil {
		t.Error("snapshot FindNode(b) = nil")
	}
	if sn.FindNode("CVE", "c") != nil {
		t.Error("snapshot FindNode(c) != nil")
	}
	if got := len(sn.NodeIDsByAttr("sev", "high")); got != 1 {
		t.Errorf("snapshot NodeIDsByAttr(sev=high) = %d, want 1", got)
	}
	if got := len(sn.NodeIDsByAttr("sev", "low")); got != 0 {
		t.Errorf("snapshot NodeIDsByAttr(sev=low) = %d, want 0", got)
	}
	if got := len(sn.NodesByType("CVE")); got != 2 {
		t.Errorf("snapshot NodesByType = %d, want 2", got)
	}
	inc := sn.IncidentEdges(nil, a, Both, "")
	if len(inc) != 1 || inc[0].Other != b {
		t.Errorf("snapshot IncidentEdges(a) = %+v, want one edge to b", inc)
	}

	// The store sees the new world.
	if got := s.Node(a).Attrs["sev"]; got != "low" {
		t.Errorf("store sees sev=%q, want low", got)
	}
	if s.Node(b) != nil {
		t.Error("store still has node b")
	}
}

func TestSnapshotReleasePurgesHistory(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("T", "a", nil)
	sn := s.Snapshot()
	if err := s.SetAttr(a, "k", "v"); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	grew := len(s.nodeOld) > 0
	s.mu.RUnlock()
	if !grew {
		t.Fatal("history not recorded while snapshot open")
	}
	sn.Release()
	sn.Release() // idempotent
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.nodeOld) != 0 || len(s.nodeBegin) != 0 || len(s.edgeOld) != 0 || len(s.edgeBegin) != 0 || len(s.snaps) != 0 {
		t.Errorf("history not purged after release: nodeOld=%d nodeBegin=%d snaps=%d",
			len(s.nodeOld), len(s.nodeBegin), len(s.snaps))
	}
}

func TestTxIsolationAndCommit(t *testing.T) {
	s := New()
	a, _ := s.MergeNode("T", "a", nil)

	before := s.Snapshot()
	defer before.Release()

	tx := s.BeginTx()
	bID, _ := tx.MergeNode("T", "b", nil)
	if err := tx.SetAttr(a, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.AddEdge(a, "rel", bID, nil); err != nil {
		t.Fatal(err)
	}

	// Tx sees its own writes.
	if tx.Node(bID) == nil {
		t.Error("tx cannot see its own created node")
	}
	if got := tx.Node(a).Attrs["k"]; got != "v" {
		t.Errorf("tx sees k=%q, want v", got)
	}
	if got := len(tx.Edges(a, Out)); got != 1 {
		t.Errorf("tx Edges(a) = %d, want 1", got)
	}

	// A snapshot opened mid-transaction must not see uncommitted writes.
	mid := s.Snapshot()
	if mid.Node(bID) != nil {
		t.Error("mid-tx snapshot sees uncommitted node")
	}
	if got := mid.Node(a).Attrs["k"]; got != "" {
		t.Errorf("mid-tx snapshot sees uncommitted attr %q", got)
	}
	if got := len(mid.NodesByType("T")); got != 1 {
		t.Errorf("mid-tx snapshot NodesByType = %d, want 1", got)
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != ErrTxDone {
		t.Errorf("double commit = %v, want ErrTxDone", err)
	}

	// Pinned snapshots keep their view even after the commit.
	if mid.Node(bID) != nil {
		t.Error("mid snapshot sees committed-later node")
	}
	if before.Node(bID) != nil {
		t.Error("before snapshot sees committed-later node")
	}
	mid.Release()

	// New snapshots and the store see everything.
	after := s.Snapshot()
	defer after.Release()
	if after.Node(bID) == nil || s.Node(bID) == nil {
		t.Error("committed node not visible")
	}
	if got := after.Node(a).Attrs["k"]; got != "v" {
		t.Errorf("after snapshot k=%q, want v", got)
	}
}

func TestTxRollbackRestoresEverything(t *testing.T) {
	s := New()
	s.IndexAttr("sev")
	a, _ := s.MergeNode("CVE", "a", map[string]string{"sev": "high"})
	b, _ := s.MergeNode("CVE", "b", nil)
	if _, _, err := s.AddEdge(a, "affects", b, nil); err != nil {
		t.Fatal(err)
	}
	want := saveBytesOf(t, s)
	wantStats := s.Stats()

	tx := s.BeginTx()
	if err := tx.DeleteNode(b); err != nil { // cascades to the edge
		t.Fatal(err)
	}
	// Reclaim b's (type, name) under a new ID, then more churn.
	b2, _ := tx.MergeNode("CVE", "b", map[string]string{"sev": "low"})
	if b2 == b {
		t.Fatalf("expected fresh id for recreated node, got %d", b2)
	}
	if err := tx.SetAttr(a, "sev", "none"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.AddEdge(b2, "affects", a, nil); err != nil {
		t.Fatal(err)
	}
	c, _ := tx.MergeNode("Malware", "c", nil)
	if err := tx.DeleteNode(c); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	if got := saveBytesOf(t, s); !bytes.Equal(got, want) {
		t.Errorf("store state after rollback differs from pre-tx state:\npre:  %s\npost: %s", want, got)
	}
	if got := s.Stats(); got.MergeHits != wantStats.MergeHits {
		t.Errorf("mergeHits = %d, want %d", got.MergeHits, wantStats.MergeHits)
	}
	if n := s.FindNode("CVE", "b"); n == nil || n.ID != b {
		t.Errorf("FindNode(b) = %+v, want id %d", n, b)
	}
	if got := len(s.NodeIDsByAttr("sev", "high")); got != 1 {
		t.Errorf("NodeIDsByAttr(high) = %d, want 1", got)
	}
	if got := len(s.NodeIDsByAttr("sev", "none")); got != 0 {
		t.Errorf("NodeIDsByAttr(none) = %d, want 0", got)
	}
	if got := len(s.Edges(a, Both)); got != 1 {
		t.Errorf("Edges(a) = %d, want 1", got)
	}
	// Allocators restored: the next node reuses the rolled-back ID space.
	d, _ := s.MergeNode("T", "d", nil)
	if d != b+1 {
		t.Errorf("next node id = %d, want %d", d, b+1)
	}
}

func TestTxWALBuffering(t *testing.T) {
	s := New()
	var log []MutationOp
	s.SetMutationHook(func(m Mutation) { log = append(log, m.Op) })

	// Multi-mutation tx commits as a wrapped group.
	tx := s.BeginTx()
	a, _ := tx.MergeNode("T", "a", nil)
	bID, _ := tx.MergeNode("T", "b", nil)
	if _, _, err := tx.AddEdge(a, "rel", bID, nil); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Fatalf("hook fired before commit: %v", log)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	want := []MutationOp{OpTxBegin, OpMergeNode, OpMergeNode, OpAddEdge, OpTxCommit}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Errorf("committed log = %v, want %v", log, want)
	}

	// Single-mutation tx logs as a bare record.
	log = nil
	tx2 := s.BeginTx()
	if err := tx2.SetAttr(a, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(log) != fmt.Sprint([]MutationOp{OpSetAttr}) {
		t.Errorf("single-mutation log = %v, want [set_attr]", log)
	}

	// Rolled-back tx logs nothing.
	log = nil
	tx3 := s.BeginTx()
	tx3.MergeNode("T", "x", nil)
	if err := tx3.Rollback(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Errorf("rollback logged %v", log)
	}

	// Read-only tx commits without logging or blocking.
	log = nil
	tx4 := s.BeginTx()
	_ = tx4.Node(a)
	if err := tx4.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(log) != 0 {
		t.Errorf("read-only tx logged %v", log)
	}
}

// TestConcurrentSnapshotReadsDuringTx drives parallel snapshot readers
// while a writer transaction churns; every reader must observe one of
// the committed states (sum invariant), never a torn intermediate.
func TestConcurrentSnapshotReadsDuringTx(t *testing.T) {
	s := New()
	const keys = 8
	ids := make([]NodeID, keys)
	for i := range ids {
		ids[i], _ = s.MergeNode("K", fmt.Sprintf("k%d", i), map[string]string{"v": "0"})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := s.Snapshot()
				first := sn.Node(ids[0]).Attrs["v"]
				for _, id := range ids {
					if got := sn.Node(id).Attrs["v"]; got != first {
						t.Errorf("torn read: node %d has v=%q, first had %q", id, got, first)
						sn.Release()
						return
					}
				}
				sn.Release()
			}
		}()
	}
	// The writer sets every key to the round number in one tx per round;
	// odd rounds roll back, so only even values ever become visible.
	for round := 1; round <= 50; round++ {
		tx := s.BeginTx()
		v := fmt.Sprint(round)
		for _, id := range ids {
			if err := tx.SetAttr(id, "v", v); err != nil {
				t.Fatal(err)
			}
		}
		if round%2 == 1 {
			if err := tx.Rollback(); err != nil {
				t.Fatal(err)
			}
		} else if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := s.Node(ids[0]).Attrs["v"]; got != "50" {
		t.Errorf("final v=%q, want 50", got)
	}
}
