package graph

import "sort"

// CSR-style adjacency: incidence is stored as two packed, ID-sorted
// arrays of (edge ID, far endpoint, type symbol) triples — one for
// out-edges grouped by source, one for in-edges grouped by target —
// with per-node offset tables indexed directly by NodeID. Walking a
// node's incident edges of one type is then a contiguous array scan
// with a 4-byte symbol compare per edge: no incidence-map hop, no
// per-edge record lookup (the endpoint and type ride in the triple),
// and no sort (triples are packed in ascending edge-ID order).
//
// Mutations do not rewrite the packed base. Edges created after the
// last rebuild go to small per-node delta lists; edges deleted from the
// base go to a tombstone set. Because edge IDs are allocated
// monotonically, every delta edge ID is greater than every base edge
// ID, so base-then-delta iteration stays globally ascending. Once the
// overlay grows past a fraction of the base the store rebuilds the
// packed arrays in one O(V + E) pass (a sorted edge-ID list is
// maintained incrementally, so the rebuild never sorts) — epoch-batched
// compaction, amortized O(1) per mutation — so long-lived mixed
// workloads converge back to pure array scans.

// halfEdge is one packed incidence triple: the edge, the endpoint on
// the far side (equal to the near node for self-loops), and the edge's
// interned type.
type halfEdge struct {
	id    EdgeID
	other NodeID
	typ   Sym
}

// adjHalf is one direction's packed incidence: off[id]..off[id+1]
// bounds node id's triples inside ids. Nodes created after the rebuild
// fall past len(off)-1 and live only in the delta.
type adjHalf struct {
	off   []uint32
	ids   []halfEdge
	delta map[NodeID][]halfEdge
}

// base returns node id's packed triples (nil when the node is past the
// base high-water mark or has none).
func (h *adjHalf) base(id NodeID) []halfEdge {
	if id >= 0 && int(id)+1 < len(h.off) {
		return h.ids[h.off[id]:h.off[id+1]]
	}
	return nil
}

// adjacency is the full two-sided incidence structure plus the shared
// mutation overlay bookkeeping.
type adjacency struct {
	out adjHalf
	in  adjHalf
	// baseMaxEdge is the highest edge ID packed into the base arrays;
	// anything greater lives in the deltas, so membership is a compare.
	baseMaxEdge EdgeID
	// dead tombstones base-resident edges deleted since the rebuild.
	dead map[EdgeID]struct{}
	// pending counts overlay entries (delta adds + tombstones) since the
	// last rebuild; the rebuild threshold compares it to the base size.
	pending int
	// all is every edge ID ever registered, ascending (appends are
	// monotonic), including recently deleted ones; rebuild compacts it
	// against the live edge map, which is what keeps the repack sort-free.
	// nil means "reconstruct from the edge map" (the bulk-load path).
	all []EdgeID
}

func newAdjacency() *adjacency {
	return &adjacency{
		out:  adjHalf{delta: make(map[NodeID][]halfEdge)},
		in:   adjHalf{delta: make(map[NodeID][]halfEdge)},
		dead: make(map[EdgeID]struct{}),
	}
}

// addEdge registers a new edge. The caller guarantees id is greater
// than every previously added edge ID (the store's allocator is
// monotonic), which is what keeps delta lists ascending.
func (a *adjacency) addEdge(id EdgeID, from, to NodeID, typ Sym) {
	a.out.delta[from] = append(a.out.delta[from], halfEdge{id: id, other: to, typ: typ})
	a.in.delta[to] = append(a.in.delta[to], halfEdge{id: id, other: from, typ: typ})
	a.all = append(a.all, id)
	a.pending += 2
}

// removeEdge unregisters an edge: delta-resident edges are cut out of
// their lists, base-resident edges are tombstoned.
func (a *adjacency) removeEdge(id EdgeID, from, to NodeID) {
	if id > a.baseMaxEdge {
		a.out.delta[from] = cutHalfEdge(a.out.delta[from], id)
		if len(a.out.delta[from]) == 0 {
			delete(a.out.delta, from)
		}
		a.in.delta[to] = cutHalfEdge(a.in.delta[to], id)
		if len(a.in.delta[to]) == 0 {
			delete(a.in.delta, to)
		}
		return
	}
	a.dead[id] = struct{}{}
	a.pending += 2
}

func cutHalfEdge(hes []halfEdge, id EdgeID) []halfEdge {
	for i, he := range hes {
		if he.id == id {
			return append(hes[:i], hes[i+1:]...)
		}
	}
	return hes
}

// removeNode drops a node's delta lists. The caller has already removed
// every incident edge, so the base ranges (if any) are fully tombstoned.
func (a *adjacency) removeNode(id NodeID) {
	delete(a.out.delta, id)
	delete(a.in.delta, id)
}

// forEach visits node id's incident triples in dir, out before in for
// Both, each block in ascending edge-ID order. fn returning false stops
// the walk. Self-loops are visited once per direction (so twice under
// Both), matching the store's historical Edges semantics.
func (a *adjacency) forEach(id NodeID, dir Direction, fn func(halfEdge) bool) {
	if dir == Out || dir == Both {
		if !a.walkHalf(&a.out, id, fn) {
			return
		}
	}
	if dir == In || dir == Both {
		a.walkHalf(&a.in, id, fn)
	}
}

func (a *adjacency) walkHalf(h *adjHalf, id NodeID, fn func(halfEdge) bool) bool {
	if hes := h.base(id); len(hes) > 0 {
		if len(a.dead) == 0 {
			for _, he := range hes {
				if !fn(he) {
					return false
				}
			}
		} else {
			for _, he := range hes {
				if _, gone := a.dead[he.id]; gone {
					continue
				}
				if !fn(he) {
					return false
				}
			}
		}
	}
	for _, he := range h.delta[id] {
		if !fn(he) {
			return false
		}
	}
	return true
}

// degree returns node id's incidence count in dir filtered by type
// (symNone matches nothing, 0 matches the empty type; pass anySym to
// count every type).
func (a *adjacency) degree(id NodeID, dir Direction, typ Sym, any bool) int {
	n := 0
	a.forEach(id, dir, func(he halfEdge) bool {
		if any || he.typ == typ {
			n++
		}
		return true
	})
	return n
}

// needsRebuild reports whether the overlay has grown past the batch
// threshold: small absolute slack so bursts of writes on small graphs
// don't thrash, proportional beyond that so rebuild work amortizes.
func (a *adjacency) needsRebuild() bool {
	return a.pending > 128 && a.pending > len(a.out.ids)/2
}

// rebuild repacks both halves from the store's edge records. Called
// under the store's write lock.
func (s *Store) rebuildAdjLocked() {
	a := s.adj
	if a.all == nil {
		// Bulk-load path (graph.Load): reconstruct the sorted ID list once.
		a.all = make([]EdgeID, 0, len(s.edges))
		for id := range s.edges {
			a.all = append(a.all, id)
		}
		sort.Slice(a.all, func(i, j int) bool { return a.all[i] < a.all[j] })
	}
	// Compact out deletions; survivors stay ascending.
	eids := a.all[:0]
	for _, id := range a.all {
		if _, ok := s.edges[id]; ok {
			eids = append(eids, id)
		}
	}
	a.all = eids
	var maxEdge EdgeID
	if len(eids) > 0 {
		maxEdge = eids[len(eids)-1]
	}
	maxNode := s.nextNode
	for _, id := range eids {
		e := s.edges[id]
		if e.from > maxNode {
			maxNode = e.from
		}
		if e.to > maxNode {
			maxNode = e.to
		}
	}
	slots := int(maxNode) + 2 // NodeIDs are 1-based and ≥ 1 (Load rejects others)
	outOff := make([]uint32, slots)
	inOff := make([]uint32, slots)
	for _, id := range eids {
		e := s.edges[id]
		outOff[e.from+1]++
		inOff[e.to+1]++
	}
	for i := 1; i < slots; i++ {
		outOff[i] += outOff[i-1]
		inOff[i] += inOff[i-1]
	}
	outIDs := make([]halfEdge, len(eids))
	inIDs := make([]halfEdge, len(eids))
	outCur := make([]uint32, slots)
	inCur := make([]uint32, slots)
	copy(outCur, outOff)
	copy(inCur, inOff)
	// Filling in ascending edge-ID order keeps every per-node range
	// ascending without a per-bucket sort.
	for _, id := range eids {
		e := s.edges[id]
		outIDs[outCur[e.from]] = halfEdge{id: id, other: e.to, typ: e.typ}
		outCur[e.from]++
		inIDs[inCur[e.to]] = halfEdge{id: id, other: e.from, typ: e.typ}
		inCur[e.to]++
	}
	a.out = adjHalf{off: outOff, ids: outIDs, delta: make(map[NodeID][]halfEdge)}
	a.in = adjHalf{off: inOff, ids: inIDs, delta: make(map[NodeID][]halfEdge)}
	a.baseMaxEdge = maxEdge
	if len(a.dead) > 0 {
		a.dead = make(map[EdgeID]struct{})
	}
	a.pending = 0
}

// maybeRebuildAdjLocked batches overlay compaction; called after
// adjacency-changing mutations under the write lock. Bulk replay
// (ApplyBatch) defers compaction to its single sealing rebuild.
func (s *Store) maybeRebuildAdjLocked() {
	if s.bulk > 0 {
		return
	}
	if s.adj.needsRebuild() {
		s.rebuildAdjLocked()
	}
}

// IncidentEdge is the allocation-free per-edge view the query executor
// expands over: the edge, the far endpoint, and the resolved type
// string (shared with the store's intern table — treat as read-only).
type IncidentEdge struct {
	ID    EdgeID
	Other NodeID
	Type  string
}

// IncidentEdges appends to buf the edges incident to id in the given
// direction whose type matches typ ("" matches every type), returning
// the extended buffer. Within one direction edges come back in
// ascending edge-ID order; Both yields the out block then the in block
// (self-loops appear in each). Reusing buf across calls makes the walk
// allocation-free once the buffer has grown to the node's degree.
func (s *Store) IncidentEdges(buf []IncidentEdge, id NodeID, dir Direction, typ string) []IncidentEdge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	any := typ == ""
	var want Sym
	if !any {
		want = s.syms.lookup(typ) // symNone matches no edge
	}
	s.adj.forEach(id, dir, func(he halfEdge) bool {
		if any || he.typ == want {
			buf = append(buf, IncidentEdge{ID: he.id, Other: he.other, Type: s.syms.str(he.typ)})
		}
		return true
	})
	return buf
}
