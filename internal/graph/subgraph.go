package graph

import (
	"math/rand"
	"sort"
)

// Subgraph is a materialized view of part of the graph, the unit the
// exploration UI renders and the layout engine positions.
type Subgraph struct {
	Nodes []*Node `json:"nodes"`
	Edges []*Edge `json:"edges"`
}

// NodeIDs returns the IDs of the subgraph's nodes in order.
func (sg *Subgraph) NodeIDs() []NodeID {
	out := make([]NodeID, len(sg.Nodes))
	for i, n := range sg.Nodes {
		out[i] = n.ID
	}
	return out
}

// ExpandFrom performs a breadth-first expansion from the seed nodes,
// visiting at most maxNeighbors neighbors per node and maxNodes nodes in
// total, up to maxDepth hops. It returns the induced subgraph (all edges
// of the store connecting two included nodes). This backs the UI's
// double-click node-expansion behaviour.
func (s *Store) ExpandFrom(seeds []NodeID, maxDepth, maxNeighbors, maxNodes int) *Subgraph {
	if maxNodes <= 0 {
		maxNodes = 100
	}
	if maxNeighbors <= 0 {
		maxNeighbors = 25
	}
	included := make(map[NodeID]bool)
	var order []NodeID
	queue := make([]NodeID, 0, len(seeds))
	depth := map[NodeID]int{}
	for _, id := range seeds {
		if s.Node(id) == nil || included[id] {
			continue
		}
		included[id] = true
		order = append(order, id)
		depth[id] = 0
		queue = append(queue, id)
	}
	for len(queue) > 0 && len(order) < maxNodes {
		cur := queue[0]
		queue = queue[1:]
		if depth[cur] >= maxDepth {
			continue
		}
		added := 0
		for _, nb := range s.Neighbors(cur, Both) {
			if added >= maxNeighbors || len(order) >= maxNodes {
				break
			}
			if included[nb.ID] {
				continue
			}
			included[nb.ID] = true
			order = append(order, nb.ID)
			depth[nb.ID] = depth[cur] + 1
			queue = append(queue, nb.ID)
			added++
		}
	}
	return s.induced(order, included)
}

// RandomSubgraph samples a connected-ish subgraph of about n nodes using a
// deterministic RNG seed: it picks a random start node and grows by random
// neighbor expansion, restarting on dead ends. Backs the UI's "fetch a
// random subgraph" feature.
func (s *Store) RandomSubgraph(seed int64, n int) *Subgraph {
	s.mu.RLock()
	all := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		all = append(all, id)
	}
	s.mu.RUnlock()
	if len(all) == 0 || n <= 0 {
		return &Subgraph{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rng := rand.New(rand.NewSource(seed))
	included := make(map[NodeID]bool)
	var order []NodeID
	var frontier []NodeID
	addNode := func(id NodeID) {
		if !included[id] {
			included[id] = true
			order = append(order, id)
			frontier = append(frontier, id)
		}
	}
	addNode(all[rng.Intn(len(all))])
	for len(order) < n && len(order) < len(all) {
		if len(frontier) == 0 {
			addNode(all[rng.Intn(len(all))]) // restart on isolated region
			continue
		}
		i := rng.Intn(len(frontier))
		cur := frontier[i]
		nbs := s.Neighbors(cur, Both)
		var cand []NodeID
		for _, nb := range nbs {
			if !included[nb.ID] {
				cand = append(cand, nb.ID)
			}
		}
		if len(cand) == 0 {
			frontier = append(frontier[:i], frontier[i+1:]...)
			continue
		}
		addNode(cand[rng.Intn(len(cand))])
	}
	return s.induced(order, included)
}

// induced builds the subgraph over the given node order with every store
// edge whose endpoints are both included.
func (s *Store) induced(order []NodeID, included map[NodeID]bool) *Subgraph {
	sg := &Subgraph{}
	for _, id := range order {
		if n := s.Node(id); n != nil {
			sg.Nodes = append(sg.Nodes, n)
		}
	}
	seenEdge := make(map[EdgeID]bool)
	for _, id := range order {
		for _, e := range s.Edges(id, Out) {
			if included[e.To] && !seenEdge[e.ID] {
				seenEdge[e.ID] = true
				sg.Edges = append(sg.Edges, e)
			}
		}
	}
	sort.Slice(sg.Edges, func(i, j int) bool { return sg.Edges[i].ID < sg.Edges[j].ID })
	return sg
}

// CollapseFrom returns the node IDs that should be hidden when the user
// collapses node id in a view currently showing viewNodes: every neighbor
// of id (and nodes only reachable through those neighbors) that would be
// disconnected from the remaining view once id's neighborhood is hidden.
// Seeds (anchors) are view nodes the caller wants to keep visible.
func (s *Store) CollapseFrom(id NodeID, viewNodes []NodeID, anchors []NodeID) []NodeID {
	inView := make(map[NodeID]bool, len(viewNodes))
	for _, v := range viewNodes {
		inView[v] = true
	}
	keep := make(map[NodeID]bool)
	keep[id] = true
	// BFS from anchors through the view *without* traversing node id:
	// whatever is unreachable collapses.
	queue := make([]NodeID, 0, len(anchors))
	for _, a := range anchors {
		if a != id && inView[a] && !keep[a] {
			keep[a] = true
			queue = append(queue, a)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range s.Neighbors(cur, Both) {
			if nb.ID == id || !inView[nb.ID] || keep[nb.ID] {
				continue
			}
			keep[nb.ID] = true
			queue = append(queue, nb.ID)
		}
	}
	var hidden []NodeID
	for _, v := range viewNodes {
		if !keep[v] {
			hidden = append(hidden, v)
		}
	}
	sort.Slice(hidden, func(i, j int) bool { return hidden[i] < hidden[j] })
	return hidden
}
