package graph

import (
	"errors"
	"sort"
)

// This file layers multi-version concurrency control over the store.
//
// The scheme is a side-map overlay, not a rewrite of the core maps: the
// nodes/edges maps and every index always describe the *latest* state
// (so bare accessors, the planner's statistics, and persistence are
// untouched), while five auxiliary maps record just enough history for
// point-in-time reads:
//
//   - nodeBegin/edgeBegin: the timestamp at which an entity's current
//     record became visible. Absent means "since forever".
//   - nodeOld/edgeOld: superseded record versions, each tagged with its
//     [begin, end) validity interval.
//   - snaps: a refcount of open snapshots per asOf timestamp.
//
// Timestamps come from commitTS, which advances once per committed
// write (bare mutations are single-op transactions). A mutator stamps
// its writes with the provisional timestamp curProv = commitTS+1; the
// stamp becomes meaningful — visible to later snapshots — only when the
// commit publishes commitTS = curProv. A version is visible to a
// snapshot taken at asOf (reading on behalf of the transaction prov,
// or 0 for a plain snapshot) iff
//
//	(begin <= asOf || begin == prov) && !(end <= asOf || end == prov)
//
// i.e. it existed at the snapshot's timestamp, or the snapshot's own
// transaction created it and hasn't itself deleted/overwritten it.
// Validity intervals for one entity are disjoint, so at most one
// version is ever visible.
//
// History is recorded only while someone can observe it: a snapshot is
// open or a transaction is in flight. Otherwise every side map stays
// empty, writes pay two empty-map probes, and reads take the exact
// pre-MVCC path. The maps are purged the moment the last snapshot
// closes. This trades long-snapshot memory (history accumulates while
// a snapshot stays open) for zero steady-state cost, which fits the
// workload here: snapshots live for one statement or one transaction.

// nodeVer is one superseded node version with its validity interval.
type nodeVer struct {
	rec   nodeRec
	begin uint64
	end   uint64
}

// edgeVer is one superseded edge version with its validity interval.
type edgeVer struct {
	rec   edgeRec
	begin uint64
	end   uint64
}

// nodeUndo is a transaction's first-touch pre-image of one node.
type nodeUndo struct {
	rec      nodeRec
	existed  bool
	begin    uint64
	hadBegin bool
	oldLen   int
}

// edgeUndo is a transaction's first-touch pre-image of one edge.
type edgeUndo struct {
	rec      edgeRec
	existed  bool
	begin    uint64
	hadBegin bool
	oldLen   int
}

// ErrTxDone is returned by Commit/Rollback on an already-finished Tx.
var ErrTxDone = errors.New("graph: transaction already committed or rolled back")

// View is the read surface shared by *Store (latest state), *Snap
// (point-in-time state), and *Tx (the transaction's snapshot plus its
// own writes). The Cypher executor reads exclusively through it.
type View interface {
	Node(id NodeID) *Node
	Edge(id EdgeID) *Edge
	FindNode(typ, name string) *Node
	NodesByName(name string) []*Node
	NodesByType(typ string) []*Node
	Edges(id NodeID, dir Direction) []*Edge
	IncidentEdges(buf []IncidentEdge, id NodeID, dir Direction, typ string) []IncidentEdge
	AllNodeIDs() []NodeID
	NodeIDsByType(typ string) []NodeID
	NodeIDsByName(name string) []NodeID
	NodeIDsByAttr(key, val string) []NodeID
	NodeIDsByTypeAttr(typ, key, val string) []NodeID
	ForEachNode(fn func(*Node) bool)
}

var (
	_ View = (*Store)(nil)
	_ View = (*Snap)(nil)
	_ View = (*Tx)(nil)
)

// --- write-side bookkeeping ---

// trackingLocked reports whether history must be recorded: someone
// holds a snapshot, or a transaction is in flight (whose writes must
// stay invisible to snapshots opened before it commits).
func (s *Store) trackingLocked() bool {
	return s.curTx != nil || len(s.snaps) > 0
}

// beginBareLocked/endBareLocked bracket one bare mutation as a
// single-op transaction: stamp with commitTS+1, publish on return.
// Callers hold writerMu and mu.
func (s *Store) beginBareLocked() {
	s.curProv = s.commitTS + 1
}

func (s *Store) endBareLocked() {
	s.commitTS = s.curProv
	s.curProv = 0
	s.maybePurgeLocked()
}

// retireNodeLocked records node id's pre-state before a write mutates
// or deletes it: the open transaction's undo log captures the
// first-touch image, and the version history keeps the superseded
// record visible to older snapshots. rec is the current record
// (zero/ignored when existed is false, i.e. a creation).
func (s *Store) retireNodeLocked(id NodeID, rec nodeRec, existed bool) {
	if tx := s.curTx; tx != nil {
		if _, seen := tx.undoN[id]; !seen {
			b, hadB := s.nodeBegin[id]
			tx.undoN[id] = nodeUndo{rec: rec, existed: existed, begin: b, hadBegin: hadB, oldLen: len(s.nodeOld[id])}
		}
	}
	if existed && s.trackingLocked() {
		s.nodeOld[id] = append(s.nodeOld[id], nodeVer{rec: rec, begin: s.nodeBegin[id], end: s.curProv})
	}
}

func (s *Store) stampNodeLocked(id NodeID) {
	if s.trackingLocked() {
		s.nodeBegin[id] = s.curProv
	}
}

func (s *Store) retireEdgeLocked(id EdgeID, rec edgeRec, existed bool) {
	if tx := s.curTx; tx != nil {
		if _, seen := tx.undoE[id]; !seen {
			b, hadB := s.edgeBegin[id]
			tx.undoE[id] = edgeUndo{rec: rec, existed: existed, begin: b, hadBegin: hadB, oldLen: len(s.edgeOld[id])}
		}
	}
	if existed && s.trackingLocked() {
		s.edgeOld[id] = append(s.edgeOld[id], edgeVer{rec: rec, begin: s.edgeBegin[id], end: s.curProv})
	}
}

func (s *Store) stampEdgeLocked(id EdgeID) {
	if s.trackingLocked() {
		s.edgeBegin[id] = s.curProv
	}
}

// maybePurgeLocked drops all version history once nobody can observe
// it. Cheap when already empty, which is the steady state.
func (s *Store) maybePurgeLocked() {
	if s.curTx != nil || len(s.snaps) > 0 {
		return
	}
	if len(s.nodeBegin) > 0 || len(s.edgeBegin) > 0 || len(s.nodeOld) > 0 || len(s.edgeOld) > 0 {
		clear(s.nodeBegin)
		clear(s.edgeBegin)
		clear(s.nodeOld)
		clear(s.edgeOld)
	}
}

// MVCCStats sizes the MVCC bookkeeping overlay. Every field is zero in
// steady state — no open snapshot or transaction — because history is
// purged the moment the last observer goes away; tests pin that
// invariant and operators can watch for snapshot leaks with it.
type MVCCStats struct {
	Snapshots    int // open snapshots (refcounts summed across timestamps)
	NodeVersions int // superseded node versions retained for old snapshots
	EdgeVersions int // superseded edge versions retained
	NodeStamps   int // begin-timestamp entries on current node records
	EdgeStamps   int // begin-timestamp entries on current edge records
}

// MVCCStats reports the current overlay sizes.
func (s *Store) MVCCStats() MVCCStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := MVCCStats{NodeStamps: len(s.nodeBegin), EdgeStamps: len(s.edgeBegin)}
	for _, c := range s.snaps {
		st.Snapshots += c
	}
	for _, vers := range s.nodeOld {
		st.NodeVersions += len(vers)
	}
	for _, vers := range s.edgeOld {
		st.EdgeVersions += len(vers)
	}
	return st
}

// Quiesce runs fn with the writer lock held: no bare mutation or
// transaction write can be in flight during fn, and commitTS is stable.
// The durability layer checkpoints under it so a snapshot can never
// capture a half-applied transaction.
func (s *Store) Quiesce(fn func() error) error {
	s.writerMu.Lock()
	defer s.writerMu.Unlock()
	return fn()
}

// --- snapshots ---

// Snap is a consistent read-only view of the store as of the commit
// timestamp at which it was taken. Opening one never blocks and is
// never blocked by writers; it is safe for concurrent use by multiple
// goroutines. Release it when done so the store can drop history.
type Snap struct {
	s        *Store
	asOf     uint64
	tx       *Tx // non-nil when this is a transaction's own view
	released bool
}

// Snapshot opens a snapshot of the current committed state.
func (s *Store) Snapshot() *Snap {
	mSnapshotsOpened.Inc()
	s.mu.Lock()
	sn := &Snap{s: s, asOf: s.commitTS}
	s.snaps[sn.asOf]++
	s.mu.Unlock()
	return sn
}

// Release closes the snapshot. Idempotent.
func (sn *Snap) Release() {
	s := sn.s
	s.mu.Lock()
	sn.releaseLocked()
	s.mu.Unlock()
}

func (sn *Snap) releaseLocked() {
	if sn.released {
		return
	}
	sn.released = true
	s := sn.s
	if c := s.snaps[sn.asOf]; c <= 1 {
		delete(s.snaps, sn.asOf)
	} else {
		s.snaps[sn.asOf] = c - 1
	}
	s.maybePurgeLocked()
}

// prov is the provisional timestamp whose writes this view may see: the
// owning transaction's, or 0 (matching no version) for plain snapshots.
func (sn *Snap) prov() uint64 {
	if sn.tx != nil {
		return sn.tx.prov
	}
	return 0
}

// visible applies the MVCC visibility rule to one [begin, end)
// interval; end == 0 means "still current".
func (sn *Snap) visible(begin, end uint64) bool {
	prov := sn.prov()
	if begin > sn.asOf && (prov == 0 || begin != prov) {
		return false
	}
	if end != 0 && (end <= sn.asOf || (prov != 0 && end == prov)) {
		return false
	}
	return true
}

func (sn *Snap) curNodeVisibleLocked(id NodeID) bool {
	b, ok := sn.s.nodeBegin[id]
	return !ok || sn.visible(b, 0)
}

func (sn *Snap) curEdgeVisibleLocked(id EdgeID) bool {
	b, ok := sn.s.edgeBegin[id]
	return !ok || sn.visible(b, 0)
}

// resolveNodeLocked returns the version of node id visible to the
// snapshot, or nil.
func (sn *Snap) resolveNodeLocked(id NodeID) *Node {
	s := sn.s
	if rec, ok := s.nodes[id]; ok && sn.curNodeVisibleLocked(id) {
		return rec.n
	}
	if len(s.nodeOld) > 0 {
		for _, v := range s.nodeOld[id] {
			if sn.visible(v.begin, v.end) {
				return v.rec.n
			}
		}
	}
	return nil
}

func (sn *Snap) resolveEdgeLocked(id EdgeID) *Edge {
	s := sn.s
	if rec, ok := s.edges[id]; ok && sn.curEdgeVisibleLocked(id) {
		return rec.e
	}
	if len(s.edgeOld) > 0 {
		for _, v := range s.edgeOld[id] {
			if sn.visible(v.begin, v.end) {
				return v.rec.e
			}
		}
	}
	return nil
}

// fastNodesLocked reports that no node history exists, so current state
// is exactly the snapshot state.
func (sn *Snap) fastNodesLocked() bool {
	return len(sn.s.nodeBegin) == 0 && len(sn.s.nodeOld) == 0
}

func (sn *Snap) fastEdgesLocked() bool {
	return len(sn.s.edgeBegin) == 0 && len(sn.s.edgeOld) == 0
}

// overlayNodesLocked calls fn for every node id whose visible version
// lives in the history overlay rather than the current maps: ids whose
// current record is invisible (or gone) but which have a visible old
// version. These are exactly the ids the index-driven paths miss.
func (sn *Snap) overlayNodesLocked(fn func(id NodeID, v nodeVer)) {
	s := sn.s
	for id, vers := range s.nodeOld {
		if _, cur := s.nodes[id]; cur && sn.curNodeVisibleLocked(id) {
			continue // disjoint intervals: no old version can also be visible
		}
		for _, v := range vers {
			if sn.visible(v.begin, v.end) {
				fn(id, v)
				break
			}
		}
	}
}

func (sn *Snap) overlayEdgesLocked(fn func(id EdgeID, v edgeVer)) {
	s := sn.s
	for id, vers := range s.edgeOld {
		if _, cur := s.edges[id]; cur {
			continue // still present: adjacency walks resolve it
		}
		for _, v := range vers {
			if sn.visible(v.begin, v.end) {
				fn(id, v)
				break
			}
		}
	}
}

// Node returns the node visible to the snapshot (nil if absent).
func (sn *Snap) Node(id NodeID) *Node {
	sn.s.mu.RLock()
	defer sn.s.mu.RUnlock()
	return sn.resolveNodeLocked(id)
}

// Edge returns the edge visible to the snapshot (nil if absent).
func (sn *Snap) Edge(id EdgeID) *Edge {
	sn.s.mu.RLock()
	defer sn.s.mu.RUnlock()
	return sn.resolveEdgeLocked(id)
}

// FindNode returns the node with the exact (type, name) visible to the
// snapshot, or nil.
func (sn *Snap) FindNode(typ, name string) *Node {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	tsym := s.syms.lookup(typ)
	if id, ok := s.byKey[nodeKeyT{typ: tsym, name: name}]; ok {
		if n := sn.resolveNodeLocked(id); n != nil {
			return n
		}
	}
	if len(s.nodeOld) > 0 {
		var found *Node
		sn.overlayNodesLocked(func(_ NodeID, v nodeVer) {
			if found == nil && v.rec.typ == tsym && v.rec.n.Name == name {
				found = v.rec.n
			}
		})
		return found
	}
	return nil
}

func sortNodes(out []*Node) []*Node {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sortNodeIDs(ids []NodeID) []NodeID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// NodesByName returns all visible nodes named name, sorted by ID.
func (sn *Snap) NodesByName(name string) []*Node {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	if sn.fastNodesLocked() {
		return s.collect(s.byName[name])
	}
	var out []*Node
	for id := range s.byName[name] {
		if sn.curNodeVisibleLocked(id) {
			out = append(out, s.nodes[id].n)
		}
	}
	sn.overlayNodesLocked(func(_ NodeID, v nodeVer) {
		if v.rec.n.Name == name {
			out = append(out, v.rec.n)
		}
	})
	return sortNodes(out)
}

// NodesByType returns all visible nodes with the given type, sorted by ID.
func (sn *Snap) NodesByType(typ string) []*Node {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	tsym := s.syms.lookup(typ)
	if sn.fastNodesLocked() {
		return s.collect(s.byType[tsym])
	}
	var out []*Node
	for id := range s.byType[tsym] {
		if sn.curNodeVisibleLocked(id) {
			out = append(out, s.nodes[id].n)
		}
	}
	sn.overlayNodesLocked(func(_ NodeID, v nodeVer) {
		if v.rec.typ == tsym {
			out = append(out, v.rec.n)
		}
	})
	return sortNodes(out)
}

// AllNodeIDs returns every visible node ID, sorted.
func (sn *Snap) AllNodeIDs() []NodeID {
	sn.s.mu.RLock()
	defer sn.s.mu.RUnlock()
	return sn.allNodeIDsLocked()
}

func (sn *Snap) allNodeIDsLocked() []NodeID {
	s := sn.s
	ids := make([]NodeID, 0, len(s.nodes))
	if sn.fastNodesLocked() {
		for id := range s.nodes {
			ids = append(ids, id)
		}
		return sortNodeIDs(ids)
	}
	for id := range s.nodes {
		if sn.curNodeVisibleLocked(id) {
			ids = append(ids, id)
		}
	}
	sn.overlayNodesLocked(func(id NodeID, _ nodeVer) {
		ids = append(ids, id)
	})
	return sortNodeIDs(ids)
}

// NodeIDsByType returns the visible node IDs with the given type, sorted.
func (sn *Snap) NodeIDsByType(typ string) []NodeID {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	tsym := s.syms.lookup(typ)
	var ids []NodeID
	for id := range s.byType[tsym] {
		if sn.fastNodesLocked() || sn.curNodeVisibleLocked(id) {
			ids = append(ids, id)
		}
	}
	if !sn.fastNodesLocked() {
		sn.overlayNodesLocked(func(id NodeID, v nodeVer) {
			if v.rec.typ == tsym {
				ids = append(ids, id)
			}
		})
	}
	return sortNodeIDs(ids)
}

// NodeIDsByName returns the visible node IDs named name, sorted.
func (sn *Snap) NodeIDsByName(name string) []NodeID {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	var ids []NodeID
	for id := range s.byName[name] {
		if sn.fastNodesLocked() || sn.curNodeVisibleLocked(id) {
			ids = append(ids, id)
		}
	}
	if !sn.fastNodesLocked() {
		sn.overlayNodesLocked(func(id NodeID, v nodeVer) {
			if v.rec.n.Name == name {
				ids = append(ids, id)
			}
		})
	}
	return sortNodeIDs(ids)
}

// NodeIDsByAttr returns the visible node IDs with attrs[key] == val when
// key is indexed; nil (meaning "no index") otherwise, like the Store.
func (sn *Snap) NodeIDsByAttr(key, val string) []NodeID {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return nil
	}
	ids := make([]NodeID, 0, len(s.propIdx[ks][val]))
	for id := range s.propIdx[ks][val] {
		if sn.fastNodesLocked() || sn.curNodeVisibleLocked(id) {
			ids = append(ids, id)
		}
	}
	if !sn.fastNodesLocked() {
		sn.overlayNodesLocked(func(id NodeID, v nodeVer) {
			if v.rec.n.Attrs[key] == val {
				ids = append(ids, id)
			}
		})
	}
	return sortNodeIDs(ids)
}

// NodeIDsByTypeAttr returns the visible node IDs with the given type and
// attrs[key] == val when key is indexed; nil otherwise, like the Store.
func (sn *Snap) NodeIDsByTypeAttr(typ, key, val string) []NodeID {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return nil
	}
	tsym := s.syms.lookup(typ)
	set := s.typeAttr[typeAttrKeyT{typ: tsym, key: ks, val: val}]
	ids := make([]NodeID, 0, len(set))
	for id := range set {
		if sn.fastNodesLocked() || sn.curNodeVisibleLocked(id) {
			ids = append(ids, id)
		}
	}
	if !sn.fastNodesLocked() {
		sn.overlayNodesLocked(func(id NodeID, v nodeVer) {
			if v.rec.typ == tsym && v.rec.n.Attrs[key] == val {
				ids = append(ids, id)
			}
		})
	}
	return sortNodeIDs(ids)
}

// Edges returns the visible edges incident to id in the given
// direction, sorted by edge ID.
func (sn *Snap) Edges(id NodeID, dir Direction) []*Edge {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	fast := sn.fastEdgesLocked()
	var out []*Edge
	sorted := true
	s.adj.forEach(id, dir, func(he halfEdge) bool {
		var e *Edge
		if fast {
			e = s.edges[he.id].e
		} else if e = sn.resolveEdgeLocked(he.id); e == nil {
			return true
		}
		if n := len(out); n > 0 && out[n-1].ID > e.ID {
			sorted = false
		}
		out = append(out, e)
		return true
	})
	if !fast && len(s.edgeOld) > 0 {
		sn.overlayEdgesLocked(func(_ EdgeID, v edgeVer) {
			if (dir == Out || dir == Both) && v.rec.from == id {
				out = append(out, v.rec.e)
				sorted = false
			}
			if (dir == In || dir == Both) && v.rec.to == id {
				out = append(out, v.rec.e)
				sorted = false
			}
		})
	}
	if !sorted {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	return out
}

// IncidentEdges is the snapshot variant of Store.IncidentEdges: it
// appends the visible incident edges matching typ. Versions never
// change an edge's endpoints or type — only attrs — so the adjacency
// walk's triples are valid for any visible version; an edge is emitted
// iff some version of it is visible. Deleted-but-visible edges come
// from the history overlay (appended out of walk order; the tail is
// sorted when that happens).
func (sn *Snap) IncidentEdges(buf []IncidentEdge, id NodeID, dir Direction, typ string) []IncidentEdge {
	s := sn.s
	s.mu.RLock()
	defer s.mu.RUnlock()
	any := typ == ""
	var want Sym
	if !any {
		want = s.syms.lookup(typ) // symNone matches no edge
	}
	fast := sn.fastEdgesLocked()
	start := len(buf)
	s.adj.forEach(id, dir, func(he halfEdge) bool {
		if !any && he.typ != want {
			return true
		}
		if !fast && sn.resolveEdgeLocked(he.id) == nil {
			return true
		}
		buf = append(buf, IncidentEdge{ID: he.id, Other: he.other, Type: s.syms.str(he.typ)})
		return true
	})
	if !fast && len(s.edgeOld) > 0 {
		added := false
		sn.overlayEdgesLocked(func(eid EdgeID, v edgeVer) {
			if !any && v.rec.typ != want {
				return
			}
			ts := s.syms.str(v.rec.typ)
			if (dir == Out || dir == Both) && v.rec.from == id {
				buf = append(buf, IncidentEdge{ID: eid, Other: v.rec.to, Type: ts})
				added = true
			}
			if (dir == In || dir == Both) && v.rec.to == id {
				buf = append(buf, IncidentEdge{ID: eid, Other: v.rec.from, Type: ts})
				added = true
			}
		})
		if added {
			tail := buf[start:]
			sort.Slice(tail, func(i, j int) bool { return tail[i].ID < tail[j].ID })
		}
	}
	return buf
}

// ForEachNode calls fn for every visible node in ID order; iteration
// stops if fn returns false. Like the Store variant, the lock is not
// held across fn calls.
func (sn *Snap) ForEachNode(fn func(*Node) bool) {
	sn.s.mu.RLock()
	ids := sn.allNodeIDsLocked()
	sn.s.mu.RUnlock()
	for _, id := range ids {
		n := sn.Node(id)
		if n == nil {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// --- transactions ---

// Tx is a store transaction: a stable snapshot for reads (taken at
// BeginTx) plus buffered-visibility writes. Writes go to the latest
// state immediately — the store is single-writer, and the transaction
// holds the writer lock from its first write until Commit or Rollback —
// but stay invisible to every other snapshot until Commit, and are
// undone in full (records, indexes, ID allocators, adjacency) by
// Rollback. Reads through the Tx see the snapshot plus the
// transaction's own writes. A Tx is intended for use by one goroutine;
// concurrent transactions from different goroutines serialize on the
// writer lock at their first write.
type Tx struct {
	s       *Store
	snap    *Snap
	prov    uint64
	writing bool
	bulk    bool
	done    bool

	// walBuf holds the transaction's mutation records, published to the
	// durability hook only at Commit (wrapped in tx_begin/tx_commit when
	// more than one): rolled-back transactions never touch the WAL, and
	// a crash between the commit records leaves a dangling group that
	// recovery discards.
	walBuf []Mutation

	undoN map[NodeID]nodeUndo
	undoE map[EdgeID]edgeUndo

	preNextNode  NodeID
	preNextEdge  EdgeID
	preMergeHits int64
}

// BeginTx opens a transaction whose reads see the store as of now.
// Never blocks: the writer lock is acquired lazily at the first write.
func (s *Store) BeginTx() *Tx {
	mTxBegin.Inc()
	s.mu.Lock()
	tx := &Tx{s: s}
	tx.snap = &Snap{s: s, asOf: s.commitTS, tx: tx}
	s.snaps[tx.snap.asOf]++
	s.mu.Unlock()
	return tx
}

// SetBulk marks the transaction as a bulk load: its first write opens a
// store bulk bracket, so per-mutation adjacency compaction and stats
// materiality checks are deferred until Commit or Rollback seals with
// one rebuild + one judgement. Call before the first write; a batch
// ingest of any size then moves StatsVersion at most once.
func (tx *Tx) SetBulk() {
	tx.bulk = true
}

// ensureWriter upgrades the transaction to a writer: take the writer
// lock, pin the provisional timestamp, and capture allocator state for
// rollback.
func (tx *Tx) ensureWriter() {
	if tx.writing {
		return
	}
	if tx.done {
		panic("graph: write on finished Tx")
	}
	s := tx.s
	s.writerMu.Lock()
	s.mu.Lock()
	tx.writing = true
	tx.prov = s.commitTS + 1
	s.curProv = tx.prov
	s.curTx = tx
	tx.undoN = make(map[NodeID]nodeUndo)
	tx.undoE = make(map[EdgeID]edgeUndo)
	tx.preNextNode, tx.preNextEdge, tx.preMergeHits = s.nextNode, s.nextEdge, s.mergeHits
	if tx.bulk {
		s.beginBulkLocked()
	}
	s.mu.Unlock()
}

// MergeNode is the transactional MergeNode.
func (tx *Tx) MergeNode(typ, name string, attrs map[string]string) (NodeID, bool) {
	tx.ensureWriter()
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	return tx.s.mergeNodeLocked(typ, name, attrs)
}

// AddEdge is the transactional AddEdge.
func (tx *Tx) AddEdge(from NodeID, typ string, to NodeID, attrs map[string]string) (EdgeID, bool, error) {
	tx.ensureWriter()
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	return tx.s.addEdgePublicLocked(from, typ, to, attrs)
}

// SetAttr is the transactional SetAttr.
func (tx *Tx) SetAttr(id NodeID, key, val string) error {
	tx.ensureWriter()
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	return tx.s.setAttrLocked(id, key, val)
}

// DeleteNode is the transactional DeleteNode.
func (tx *Tx) DeleteNode(id NodeID) error {
	tx.ensureWriter()
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	return tx.s.deleteNodeLocked(id)
}

// DeleteEdge is the transactional DeleteEdge.
func (tx *Tx) DeleteEdge(id EdgeID) error {
	tx.ensureWriter()
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	return tx.s.deleteEdgePublicLocked(id)
}

// MigrateEdges is the transactional MigrateEdges.
func (tx *Tx) MigrateEdges(from, to NodeID) error {
	tx.ensureWriter()
	tx.s.mu.Lock()
	defer tx.s.mu.Unlock()
	return tx.s.migrateEdgesLocked(from, to)
}

// Commit publishes the transaction's writes: later snapshots see them,
// and the durability hook receives the buffered mutation group.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	mTxCommit.Inc()
	s := tx.s
	if !tx.writing {
		tx.snap.Release()
		return nil
	}
	s.mu.Lock()
	if s.onMutation != nil && len(tx.walBuf) > 0 {
		// A single-mutation transaction logs as a bare record; a larger
		// group is wrapped so recovery can treat it atomically.
		if len(tx.walBuf) > 1 {
			s.onMutation(Mutation{Op: OpTxBegin})
		}
		for i := range tx.walBuf {
			s.onMutation(tx.walBuf[i])
		}
		if len(tx.walBuf) > 1 {
			s.onMutation(Mutation{Op: OpTxCommit})
		}
	}
	tx.walBuf = nil
	s.commitTS = tx.prov
	s.curTx = nil
	s.curProv = 0
	tx.snap.releaseLocked()
	if tx.bulk {
		s.endBulkLocked()
	}
	s.maybeRebuildAdjLocked()
	s.mu.Unlock()
	s.writerMu.Unlock()
	return nil
}

// Rollback undoes every write of the transaction — records, indexes,
// ID allocators, adjacency — and discards its WAL buffer.
func (tx *Tx) Rollback() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	mTxRollback.Inc()
	s := tx.s
	if !tx.writing {
		tx.snap.Release()
		return nil
	}
	s.mu.Lock()
	// Phase 1: strip the transaction's version of every touched entity,
	// so reinstalls can't collide on shared index keys (e.g. a deleted
	// node's (type, name) reclaimed by a node the tx created).
	for id := range tx.undoE {
		if rec, ok := s.edges[id]; ok {
			s.uninstallEdgeLocked(id, rec)
		}
	}
	for id := range tx.undoN {
		if rec, ok := s.nodes[id]; ok {
			s.uninstallNodeLocked(id, rec)
		}
	}
	// Phase 2: reinstall pre-images and restore version bookkeeping.
	for id, u := range tx.undoN {
		if u.existed {
			s.installNodeLocked(id, u.rec)
		}
		if u.hadBegin {
			s.nodeBegin[id] = u.begin
		} else {
			delete(s.nodeBegin, id)
		}
		if vers := s.nodeOld[id]; len(vers) > u.oldLen {
			if u.oldLen == 0 {
				delete(s.nodeOld, id)
			} else {
				s.nodeOld[id] = vers[:u.oldLen]
			}
		}
	}
	for id, u := range tx.undoE {
		if u.existed {
			s.installEdgeLocked(id, u.rec)
		}
		if u.hadBegin {
			s.edgeBegin[id] = u.begin
		} else {
			delete(s.edgeBegin, id)
		}
		if vers := s.edgeOld[id]; len(vers) > u.oldLen {
			if u.oldLen == 0 {
				delete(s.edgeOld, id)
			} else {
				s.edgeOld[id] = vers[:u.oldLen]
			}
		}
	}
	s.nextNode, s.nextEdge, s.mergeHits = tx.preNextNode, tx.preNextEdge, tx.preMergeHits
	s.adj.all = nil // force reconstruction from the restored edge map
	s.rebuildAdjLocked()
	s.idxEpoch++
	if s.bulk == 0 && s.statsMaterialLocked() {
		s.bumpStatsLocked()
	}
	if tx.bulk {
		s.endBulkLocked()
	}
	tx.walBuf = nil
	s.curTx = nil
	s.curProv = 0
	tx.snap.releaseLocked()
	s.mu.Unlock()
	s.writerMu.Unlock()
	return nil
}

// --- Tx as a View: the snapshot plus the transaction's own writes ---

func (tx *Tx) Node(id NodeID) *Node            { return tx.snap.Node(id) }
func (tx *Tx) Edge(id EdgeID) *Edge            { return tx.snap.Edge(id) }
func (tx *Tx) FindNode(typ, name string) *Node { return tx.snap.FindNode(typ, name) }
func (tx *Tx) NodesByName(name string) []*Node { return tx.snap.NodesByName(name) }
func (tx *Tx) NodesByType(typ string) []*Node  { return tx.snap.NodesByType(typ) }
func (tx *Tx) Edges(id NodeID, dir Direction) []*Edge {
	return tx.snap.Edges(id, dir)
}
func (tx *Tx) IncidentEdges(buf []IncidentEdge, id NodeID, dir Direction, typ string) []IncidentEdge {
	return tx.snap.IncidentEdges(buf, id, dir, typ)
}
func (tx *Tx) AllNodeIDs() []NodeID               { return tx.snap.AllNodeIDs() }
func (tx *Tx) NodeIDsByType(typ string) []NodeID  { return tx.snap.NodeIDsByType(typ) }
func (tx *Tx) NodeIDsByName(name string) []NodeID { return tx.snap.NodeIDsByName(name) }
func (tx *Tx) NodeIDsByAttr(key, val string) []NodeID {
	return tx.snap.NodeIDsByAttr(key, val)
}
func (tx *Tx) NodeIDsByTypeAttr(typ, key, val string) []NodeID {
	return tx.snap.NodeIDsByTypeAttr(typ, key, val)
}
func (tx *Tx) ForEachNode(fn func(*Node) bool) { tx.snap.ForEachNode(fn) }

// --- latest-state reads ---
//
// Writers sometimes need the latest state rather than their snapshot:
// MergeNode and AddEdge act on latest (single-writer semantics), so the
// pre-write diffing and post-write binding around them must too. The
// Latest* family exposes that surface uniformly on *Store and *Tx.

func (s *Store) LatestNode(id NodeID) *Node { return s.Node(id) }
func (s *Store) LatestEdge(id EdgeID) *Edge { return s.Edge(id) }
func (s *Store) LatestEdges(id NodeID, dir Direction) []*Edge {
	return s.Edges(id, dir)
}
func (s *Store) LatestFindNode(typ, name string) *Node { return s.FindNode(typ, name) }

func (tx *Tx) LatestNode(id NodeID) *Node { return tx.s.Node(id) }
func (tx *Tx) LatestEdge(id EdgeID) *Edge { return tx.s.Edge(id) }
func (tx *Tx) LatestEdges(id NodeID, dir Direction) []*Edge {
	return tx.s.Edges(id, dir)
}
func (tx *Tx) LatestFindNode(typ, name string) *Node { return tx.s.FindNode(typ, name) }
