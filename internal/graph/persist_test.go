package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// Save/Load failure-mode coverage: recovery builds on this format, so
// damaged inputs must fail loudly instead of loading half a graph.

// persistFixture builds a small graph and returns its Save bytes.
func persistFixture(t *testing.T) (*Store, []byte) {
	t.Helper()
	s := New()
	a, _ := s.MergeNode("Malware", "wannacry", map[string]string{"platform": "windows"})
	b, _ := s.MergeNode("IP", "10.1.2.3", nil)
	c, _ := s.MergeNode("Tool", "mimikatz", nil)
	s.AddEdge(a, "CONNECT", b, map[string]string{"proto": "tcp"})
	s.AddEdge(a, "USE", c, nil)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	return s, buf.Bytes()
}

func TestLoadTruncatedStream(t *testing.T) {
	_, data := persistFixture(t)
	// Every truncation that cuts into or before a record must error —
	// the header's node/edge counts promise more records than arrive.
	for _, cut := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 2} {
		if _, err := Load(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("Load accepted a stream truncated at %d/%d bytes", cut, len(data))
		}
	}
}

func TestLoadMidRecordCorruption(t *testing.T) {
	_, data := persistFixture(t)
	// Smash the middle of a node record's JSON.
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatal("fixture too small")
	}
	lines[2] = []byte(`{"id":2,"type":`)
	if _, err := Load(bytes.NewReader(bytes.Join(lines, []byte("\n")))); err == nil {
		t.Error("Load accepted mid-record corruption")
	}
	// A wrong magic and a wrong version must also fail.
	if _, err := Load(strings.NewReader(`{"magic":"other","version":1,"nodes":0,"edges":0}` + "\n")); err == nil {
		t.Error("Load accepted a foreign magic")
	}
	if _, err := Load(strings.NewReader(`{"magic":"securitykg-graph","version":9,"nodes":0,"edges":0}` + "\n")); err == nil {
		t.Error("Load accepted an unknown version")
	}
}

func TestLoadDuplicateAndDanglingRecords(t *testing.T) {
	// Duplicate node IDs.
	in := `{"magic":"securitykg-graph","version":1,"next_node":2,"next_edge":0,"nodes":2,"edges":0}
{"id":1,"type":"A","name":"x"}
{"id":1,"type":"B","name":"y"}
`
	if _, err := Load(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "duplicate node id") {
		t.Errorf("duplicate node id: got %v", err)
	}
	// Duplicate (type, name) pairs under different IDs break the merge index.
	in = `{"magic":"securitykg-graph","version":1,"next_node":2,"next_edge":0,"nodes":2,"edges":0}
{"id":1,"type":"A","name":"x"}
{"id":2,"type":"A","name":"x"}
`
	if _, err := Load(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "duplicate node") {
		t.Errorf("duplicate (type,name): got %v", err)
	}
	// An edge referencing a node that was never loaded.
	in = `{"magic":"securitykg-graph","version":1,"next_node":1,"next_edge":1,"nodes":1,"edges":1}
{"id":1,"type":"A","name":"x"}
{"id":1,"type":"E","from":1,"to":99}
`
	if _, err := Load(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "unknown node") {
		t.Errorf("dangling edge: got %v", err)
	}
	// Duplicate edge IDs.
	in = `{"magic":"securitykg-graph","version":1,"next_node":2,"next_edge":1,"nodes":2,"edges":2}
{"id":1,"type":"A","name":"x"}
{"id":2,"type":"A","name":"y"}
{"id":1,"type":"E","from":1,"to":2}
{"id":1,"type":"F","from":2,"to":1}
`
	if _, err := Load(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "duplicate edge id") {
		t.Errorf("duplicate edge id: got %v", err)
	}
}

// TestSubgraphRoundTrip: subgraph extraction commutes with Save/Load —
// the same expansion over a persisted-and-reloaded store returns the
// same view the original store produced.
func TestSubgraphRoundTrip(t *testing.T) {
	s, data := persistFixture(t)
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	seed := s.FindNode("Malware", "wannacry")
	if seed == nil {
		t.Fatal("fixture node missing")
	}
	want := s.ExpandFrom([]NodeID{seed.ID}, 2, 10, 100)
	got := loaded.ExpandFrom([]NodeID{seed.ID}, 2, 10, 100)
	if !reflect.DeepEqual(want.NodeIDs(), got.NodeIDs()) {
		t.Fatalf("subgraph nodes drifted across Save/Load: %v vs %v", want.NodeIDs(), got.NodeIDs())
	}
	if len(want.Edges) != len(got.Edges) {
		t.Fatalf("subgraph edges drifted: %d vs %d", len(want.Edges), len(got.Edges))
	}
	for i := range want.Edges {
		if !reflect.DeepEqual(want.Edges[i], got.Edges[i]) {
			t.Fatalf("edge %d drifted: %+v vs %+v", i, want.Edges[i], got.Edges[i])
		}
	}
	// And the reloaded store re-saves to identical bytes.
	var again bytes.Buffer
	if err := loaded.Save(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), data) {
		t.Fatal("Save→Load→Save is not byte-stable")
	}
}

// TestMutationHookAndEpoch: every effective mutating op fires the hook
// exactly once and bumps the invalidation epoch; no-ops do neither.
func TestMutationHookAndEpoch(t *testing.T) {
	s := New()
	var ops []MutationOp
	s.SetMutationHook(func(m Mutation) { ops = append(ops, m.Op) })
	epoch := func() int64 { return s.IndexEpoch() }

	e0 := epoch()
	a, _ := s.MergeNode("A", "x", nil)
	b, _ := s.MergeNode("B", "y", nil)
	if epoch() != e0+2 {
		t.Fatalf("MergeNode create did not bump epoch: %d -> %d", e0, epoch())
	}
	s.MergeNode("A", "x", nil) // pure hit: no change
	if epoch() != e0+2 || len(ops) != 2 {
		t.Fatalf("no-op merge fired hook or bumped epoch (ops=%v)", ops)
	}
	s.MergeNode("A", "x", map[string]string{"k": "v"}) // augmenting hit
	eid, _, _ := s.AddEdge(a, "E", b, nil)
	s.AddEdge(a, "E", b, nil) // dedup: no change
	s.SetAttr(a, "k", "v")    // same value: no change
	s.SetAttr(a, "k", "w")
	s.DeleteEdge(eid)
	s.AddEdge(a, "E", b, nil)
	s.DeleteNode(b)
	s.MigrateEdges(a, a) // no incident edges left on a: no change
	want := []MutationOp{
		OpMergeNode, OpMergeNode, OpMergeNode, OpAddEdge,
		OpSetAttr, OpDeleteEdge, OpAddEdge, OpDeleteNode,
	}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("hook sequence:\n got %v\nwant %v", ops, want)
	}
	if epoch() != e0+int64(len(want)) {
		t.Fatalf("epoch %d after %d effective mutations (started %d)", epoch(), len(want), e0)
	}
}
