package graph

import "sort"

// This file is the statistics and selectivity layer the Cypher planner
// consumes: O(1) cardinality estimates backed by the live indexes, degree
// statistics for expansion fan-out, and NodeID-granular access paths so
// the streaming executor can pull nodes lazily instead of materializing
// full candidate slices up front.

// CountNodes returns the number of nodes in the store.
func (s *Store) CountNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// CountEdges returns the number of edges in the store.
func (s *Store) CountEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.edges)
}

// CountByType returns the number of nodes with the given type (label).
func (s *Store) CountByType(typ string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byType[typ])
}

// CountByName returns the number of nodes whose Name equals name.
func (s *Store) CountByName(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName[name])
}

// CountByTypeName returns 0 or 1: whether a node with the exact
// (type, name) pair exists. The merge index makes this pair unique.
func (s *Store) CountByTypeName(typ, name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.byKey[nodeKey(typ, name)]; ok {
		return 1
	}
	return 0
}

// CountByAttr returns the number of nodes with attrs[key] == val. The
// count is exact (ok=true) only when the attribute is indexed; otherwise
// ok=false and the caller must fall back to a scan estimate.
func (s *Store) CountByAttr(key, val string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.indexed[key] {
		return 0, false
	}
	return len(s.propIdx[key][val]), true
}

// CountByTypeAttr returns the number of nodes of the given type with
// attrs[key] == val, using the composite (type, key, val) index. ok=false
// when the attribute is not indexed.
func (s *Store) CountByTypeAttr(typ, key, val string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.indexed[key] {
		return 0, false
	}
	return len(s.typeAttr[typeAttrKey(typ, key, val)]), true
}

// CountEdgesByType returns the number of edges with the given type.
func (s *Store) CountEdgesByType(typ string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edgeTypeCount[typ]
}

// HasAttrIndex reports whether IndexAttr was called for key.
func (s *Store) HasAttrIndex(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.indexed[key]
}

// IndexEpoch returns the store's invalidation epoch: a counter that
// increases every time a new attribute index is created AND on every
// effective mutation (node/edge creation, attribute writes, deletions,
// edge migration). Plan caches key their entries on it, so a plan chosen
// before IndexAttr never shadows the new access path, and plans costed
// against pre-mutation statistics are deterministically re-planned
// instead of riding stale cardinalities until the 2× drift bound trips.
func (s *Store) IndexEpoch() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idxEpoch
}

// AvgNameBucket returns the average number of nodes sharing one name —
// the planner's default selectivity for a name seek whose key is a
// query parameter (unknown until bind time).
func (s *Store) AvgNameBucket() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.byName) == 0 {
		return 1
	}
	return float64(len(s.nodes)) / float64(len(s.byName))
}

// AvgAttrBucket returns the average number of nodes per distinct value
// of an indexed attribute (ok=false when the attribute is not indexed)
// — the stats default for parameter-valued attribute seeks. O(distinct
// values); called at plan time only.
func (s *Store) AvgAttrBucket(key string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.indexed[key] {
		return 0, false
	}
	buckets := s.propIdx[key]
	if len(buckets) == 0 {
		return 1, true
	}
	total := 0
	for _, set := range buckets {
		total += len(set)
	}
	return float64(total) / float64(len(buckets)), true
}

// AvgDegree estimates the average per-node fan-out of edges with the
// given type ("" = all edges). It is the planner's expansion-cost
// estimate: expanding one bound node along edgeType yields about
// AvgDegree(edgeType) candidate bindings.
func (s *Store) AvgDegree(edgeType string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.nodes) == 0 {
		return 0
	}
	n := len(s.edges)
	if edgeType != "" {
		n = s.edgeTypeCount[edgeType]
	}
	return float64(n) / float64(len(s.nodes))
}

// DegreeStats returns the average and maximum degree over all nodes in
// the given direction (Both counts each edge at both endpoints).
func (s *Store) DegreeStats(dir Direction) (avg float64, max int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.nodes) == 0 {
		return 0, 0
	}
	total := 0
	for id := range s.nodes {
		d := 0
		if dir == Out || dir == Both {
			d += len(s.out[id])
		}
		if dir == In || dir == Both {
			d += len(s.in[id])
		}
		total += d
		if d > max {
			max = d
		}
	}
	return float64(total) / float64(len(s.nodes)), max
}

// --- NodeID access paths for lazy scans ---

func sortedIDs(set map[NodeID]struct{}) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllNodeIDs returns every node ID, sorted.
func (s *Store) AllNodeIDs() []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeIDsByType returns the IDs of nodes with the given type, sorted.
func (s *Store) NodeIDsByType(typ string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedIDs(s.byType[typ])
}

// NodeIDsByName returns the IDs of nodes with the given name, sorted.
func (s *Store) NodeIDsByName(name string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedIDs(s.byName[name])
}

// NodeIDsByAttr returns the IDs of nodes with attrs[key] == val via the
// attribute index; nil when the attribute is not indexed.
func (s *Store) NodeIDsByAttr(key, val string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.indexed[key] {
		return nil
	}
	return sortedIDs(s.propIdx[key][val])
}

// NodeIDsByTypeAttr returns the IDs of nodes of the given type with
// attrs[key] == val via the composite index; nil when the attribute is
// not indexed.
func (s *Store) NodeIDsByTypeAttr(typ, key, val string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.indexed[key] {
		return nil
	}
	return sortedIDs(s.typeAttr[typeAttrKey(typ, key, val)])
}

// NodesByTypeAttr returns copies of the nodes of the given type with
// attrs[key] == val. Uses the composite index when available, otherwise
// scans.
func (s *Store) NodesByTypeAttr(typ, key, val string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.indexed[key] {
		return s.collect(s.typeAttr[typeAttrKey(typ, key, val)])
	}
	var out []*Node
	for id := range s.byType[typ] {
		n := s.nodes[id]
		if n.Attrs[key] == val {
			out = append(out, copyNode(n))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
