package graph

import "sort"

// This file is the statistics and selectivity layer the Cypher planner
// consumes: O(1) cardinality estimates backed by the live indexes, degree
// statistics for expansion fan-out, and NodeID-granular access paths so
// the streaming executor can pull nodes lazily instead of materializing
// full candidate slices up front. Planner-facing string inputs resolve
// through the symbol table with lookup (never intern): probing for a
// label or key the store has never seen must not grow the table.

// CountNodes returns the number of nodes in the store.
func (s *Store) CountNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// CountEdges returns the number of edges in the store.
func (s *Store) CountEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.edges)
}

// CountByType returns the number of nodes with the given type (label).
func (s *Store) CountByType(typ string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byType[s.syms.lookup(typ)])
}

// CountByName returns the number of nodes whose Name equals name.
func (s *Store) CountByName(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName[name])
}

// CountByTypeName returns 0 or 1: whether a node with the exact
// (type, name) pair exists. The merge index makes this pair unique.
func (s *Store) CountByTypeName(typ, name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, ok := s.byKey[nodeKeyT{typ: s.syms.lookup(typ), name: name}]; ok {
		return 1
	}
	return 0
}

// CountByAttr returns the number of nodes with attrs[key] == val. The
// count is exact (ok=true) only when the attribute is indexed; otherwise
// ok=false and the caller must fall back to a scan estimate.
func (s *Store) CountByAttr(key, val string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return 0, false
	}
	return len(s.propIdx[ks][val]), true
}

// CountByTypeAttr returns the number of nodes of the given type with
// attrs[key] == val, using the composite (type, key, val) index. ok=false
// when the attribute is not indexed.
func (s *Store) CountByTypeAttr(typ, key, val string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return 0, false
	}
	return len(s.typeAttr[typeAttrKeyT{typ: s.syms.lookup(typ), key: ks, val: val}]), true
}

// CountEdgesByType returns the number of edges with the given type.
func (s *Store) CountEdgesByType(typ string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.edgeTypeCount[s.syms.lookup(typ)]
}

// DistinctLabels returns the number of distinct node types currently
// live in the store. O(1): the label index prunes empty sets, so its
// size is the live distinct-label count.
func (s *Store) DistinctLabels() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byType)
}

// DistinctNames returns the number of distinct node names currently live
// in the store. O(1) for the same reason as DistinctLabels.
func (s *Store) DistinctNames() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.byName)
}

// HasAttrIndex reports whether IndexAttr was called for key.
func (s *Store) HasAttrIndex(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.indexed[s.syms.lookup(key)]
}

// IndexEpoch returns the store's per-mutation change counter: it
// increases every time a new attribute index is created AND on every
// effective mutation (node/edge creation, attribute writes, deletions,
// edge migration). It is a cheap has-anything-changed probe for
// diagnostics and tests; the plan cache keys on the coarser
// StatsVersion, and the durability layer consumes the mutation hook
// (SetMutationHook), not this counter.
func (s *Store) IndexEpoch() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.idxEpoch
}

// AvgNameBucket returns the average number of nodes sharing one name —
// the planner's default selectivity for a name seek whose key is a
// query parameter (unknown until bind time). O(1): the name index prunes
// empty buckets.
func (s *Store) AvgNameBucket() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.byName) == 0 {
		return 1
	}
	return float64(len(s.nodes)) / float64(len(s.byName))
}

// AvgAttrBucket returns the average number of nodes per distinct value
// of an indexed attribute (ok=false when the attribute is not indexed)
// — the stats default for parameter-valued attribute seeks. O(1): the
// store keeps a live count of nodes carrying each indexed key, so no
// per-value scan happens at plan time.
func (s *Store) AvgAttrBucket(key string) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return 0, false
	}
	buckets := len(s.propIdx[ks])
	if buckets == 0 {
		return 1, true
	}
	return float64(s.propIdxSize[ks]) / float64(buckets), true
}

// --- stats version: the planner-facing invalidation epoch ---

// statsSnapshot captures the planner-visible counts at the last stats
// version bump, so materiality is judged against what cached plans were
// actually costed with rather than against the previous mutation. Keys
// are interned symbols: snapshots are rebuilt on every bump, so symbol
// keys keep that rebuild allocation-light.
type statsSnapshot struct {
	nodes      int
	edges      int
	byLabel    map[Sym]int
	byEdgeType map[Sym]int
	// byAttrVals tracks the distinct-value count of each indexed
	// attribute and names the distinct-name count: AvgAttrBucket and
	// AvgNameBucket (= nodes / distinct values) are plan-time inputs, so
	// a key spreading from one value to thousands is a material change
	// even when no count above moves.
	byAttrVals map[Sym]int
	names      int
}

// statsDrift reports whether cur has moved materially away from base:
// more than 12.5% plus a small absolute slack, so single-row writes on a
// store of any size are never material but bulk shifts always are.
func statsDrift(cur, base int) bool {
	d := cur - base
	if d < 0 {
		d = -d
	}
	return d*8 > base+32
}

// statsMaterialLocked reports whether any planner-visible count has
// drifted materially since the last stats version bump. Callers hold the
// write lock. O(labels + edge types), both small in practice.
func (s *Store) statsMaterialLocked() bool {
	if statsDrift(len(s.nodes), s.statsBase.nodes) || statsDrift(len(s.edges), s.statsBase.edges) {
		return true
	}
	for l, set := range s.byType {
		if statsDrift(len(set), s.statsBase.byLabel[l]) {
			return true
		}
	}
	for l, c := range s.statsBase.byLabel {
		if _, ok := s.byType[l]; !ok && statsDrift(0, c) {
			return true
		}
	}
	for t, c := range s.edgeTypeCount {
		if statsDrift(c, s.statsBase.byEdgeType[t]) {
			return true
		}
	}
	for t, c := range s.statsBase.byEdgeType {
		if _, ok := s.edgeTypeCount[t]; !ok && statsDrift(0, c) {
			return true
		}
	}
	for k := range s.indexed {
		if statsDrift(len(s.propIdx[k]), s.statsBase.byAttrVals[k]) {
			return true
		}
	}
	return statsDrift(len(s.byName), s.statsBase.names)
}

// bumpStatsLocked advances the stats version and re-snapshots the counts
// the next materiality judgement compares against. Degree histograms are
// cached per version (DegreeHistogram), so a bump implicitly retires
// them. Callers hold the write lock.
func (s *Store) bumpStatsLocked() {
	s.statsVersion++
	s.rebaseStatsLocked()
}

func (s *Store) rebaseStatsLocked() {
	base := statsSnapshot{
		nodes:      len(s.nodes),
		edges:      len(s.edges),
		byLabel:    make(map[Sym]int, len(s.byType)),
		byEdgeType: make(map[Sym]int, len(s.edgeTypeCount)),
	}
	for l, set := range s.byType {
		base.byLabel[l] = len(set)
	}
	for t, c := range s.edgeTypeCount {
		base.byEdgeType[t] = c
	}
	base.byAttrVals = make(map[Sym]int, len(s.indexed))
	for k := range s.indexed {
		base.byAttrVals[k] = len(s.propIdx[k])
	}
	base.names = len(s.byName)
	s.statsBase = base
}

// StatsVersion returns the planner-facing invalidation epoch: it
// advances when a planner-visible count changes materially (>12.5% plus
// slack on total nodes/edges, any single label / edge type count, the
// distinct-name count, or an indexed attribute's distinct-value count)
// and whenever IndexAttr creates a new access path. Unlike IndexEpoch — which
// counts every effective mutation — it stays put under write-heavy
// workloads whose store shape is roughly stable, which is what lets the
// shared plan cache keep serving prepared statements between bumps.
// Cached plans stay *correct* either way (access paths never become
// invalid); the version only protects optimality.
func (s *Store) StatsVersion() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.statsVersion
}

// --- degree histograms ---

// degreeKey identifies one cached histogram. Strings, not symbols: the
// cache is probed once per plan, and string keys keep unknown labels
// (which have no symbol) addressable without sentinel juggling.
type degreeKey struct {
	label    string
	edgeType string
	dir      Direction
}

type cachedHistogram struct {
	version int64
	hist    DegreeHistogram
}

// DegreeHistogram summarizes the fan-out of one (source label, edge
// type, direction) combination: how many sources exist, how many of them
// have at least one matching edge, the total/maximum degree, and a log2
// bucket profile (Buckets[i] counts sources with degree in
// [2^i, 2^(i+1))). It is what replaced the planner's uniform
// expand-factor assumption: the cost model reads Avg() — the measured
// mean fan-out of exactly the (label, type, direction) being expanded —
// while NonZero/Max/Buckets are the documented observability surface
// (ARCHITECTURE.md) and the inputs skew-aware costing (damping hub
// estimates by Max/AvgNonZero) will build on; they cost one shift loop
// per source at (cached, per-version) compute time.
type DegreeHistogram struct {
	Label    string    // "" = all nodes
	EdgeType string    // "" = all edge types
	Dir      Direction // Out, In or Both (Both counts each loop edge twice)
	Sources  int       // nodes carrying Label
	NonZero  int       // sources with degree >= 1
	Walks    int       // sum of per-source degrees (matching incidences)
	Max      int
	Buckets  []int
}

// Avg returns the mean degree over all sources (0 when there are none).
func (h DegreeHistogram) Avg() float64 {
	if h.Sources == 0 {
		return 0
	}
	return float64(h.Walks) / float64(h.Sources)
}

// AvgNonZero returns the mean degree over sources that have at least one
// matching edge — the fan-out a row that *did* expand sees.
func (h DegreeHistogram) AvgNonZero() float64 {
	if h.NonZero == 0 {
		return 0
	}
	return float64(h.Walks) / float64(h.NonZero)
}

// DegreeHistogram returns the (cached) degree histogram for the given
// source label ("" = all nodes), edge type ("" = all types) and
// direction. Histograms are computed lazily — O(sources + incident
// edges) over the packed adjacency — and cached per stats version, so
// plan-time lookups are O(1) between material changes of the store.
func (s *Store) DegreeHistogram(label, edgeType string, dir Direction) DegreeHistogram {
	ver := s.StatsVersion()
	key := degreeKey{label: label, edgeType: edgeType, dir: dir}
	s.histMu.Lock()
	if c, ok := s.histCache[key]; ok && c.version == ver {
		s.histMu.Unlock()
		return c.hist
	}
	s.histMu.Unlock()
	h := s.computeDegreeHistogram(label, edgeType, dir)
	s.histMu.Lock()
	if s.histCache == nil {
		s.histCache = make(map[degreeKey]cachedHistogram)
	}
	s.histCache[key] = cachedHistogram{version: ver, hist: h}
	s.histMu.Unlock()
	return h
}

func (s *Store) computeDegreeHistogram(label, edgeType string, dir Direction) DegreeHistogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := DegreeHistogram{Label: label, EdgeType: edgeType, Dir: dir}
	anyType := edgeType == ""
	want := Sym(0)
	if !anyType {
		want = s.syms.lookup(edgeType)
	}
	add := func(id NodeID) {
		h.Sources++
		d := s.adj.degree(id, dir, want, anyType)
		if d == 0 {
			return
		}
		h.NonZero++
		h.Walks += d
		if d > h.Max {
			h.Max = d
		}
		b := 0
		for v := d; v > 1; v >>= 1 {
			b++
		}
		for len(h.Buckets) <= b {
			h.Buckets = append(h.Buckets, 0)
		}
		h.Buckets[b]++
	}
	if label == "" {
		for id := range s.nodes {
			add(id)
		}
	} else {
		for id := range s.byType[s.syms.lookup(label)] {
			add(id)
		}
	}
	return h
}

// DegreeStats returns the average and maximum degree over all nodes in
// the given direction (Both counts each edge at both endpoints).
func (s *Store) DegreeStats(dir Direction) (avg float64, max int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.nodes) == 0 {
		return 0, 0
	}
	total := 0
	for id := range s.nodes {
		d := s.adj.degree(id, dir, 0, true)
		total += d
		if d > max {
			max = d
		}
	}
	return float64(total) / float64(len(s.nodes)), max
}

// --- NodeID access paths for lazy scans ---

func sortedIDs(set map[NodeID]struct{}) []NodeID {
	out := make([]NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllNodeIDs returns every node ID, sorted.
func (s *Store) AllNodeIDs() []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]NodeID, 0, len(s.nodes))
	for id := range s.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodeIDsByType returns the IDs of nodes with the given type, sorted.
func (s *Store) NodeIDsByType(typ string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedIDs(s.byType[s.syms.lookup(typ)])
}

// NodeIDsByName returns the IDs of nodes with the given name, sorted.
func (s *Store) NodeIDsByName(name string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sortedIDs(s.byName[name])
}

// NodeIDsByAttr returns the IDs of nodes with attrs[key] == val via the
// attribute index; nil when the attribute is not indexed.
func (s *Store) NodeIDsByAttr(key, val string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return nil
	}
	return sortedIDs(s.propIdx[ks][val])
}

// NodeIDsByTypeAttr returns the IDs of nodes of the given type with
// attrs[key] == val via the composite index; nil when the attribute is
// not indexed.
func (s *Store) NodeIDsByTypeAttr(typ, key, val string) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if !s.indexed[ks] {
		return nil
	}
	return sortedIDs(s.typeAttr[typeAttrKeyT{typ: s.syms.lookup(typ), key: ks, val: val}])
}

// NodesByTypeAttr returns the nodes of the given type with
// attrs[key] == val. Uses the composite index when available, otherwise
// scans. The records are shared and immutable — read-only.
func (s *Store) NodesByTypeAttr(typ, key, val string) []*Node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ks := s.syms.lookup(key)
	if s.indexed[ks] {
		return s.collect(s.typeAttr[typeAttrKeyT{typ: s.syms.lookup(typ), key: ks, val: val}])
	}
	var out []*Node
	for id := range s.byType[s.syms.lookup(typ)] {
		n := s.nodes[id].n
		if n.Attrs[key] == val {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
