package graph

import (
	"sort"

	"securitykg/internal/metrics"
)

// Cardinality-drift feedback: the stats layer's half of EXPLAIN
// ANALYZE. When an analyzed execution observes a stage's actual
// cardinality diverging from the planner's estimate, the engine reports
// it here keyed by (source label, edge type, direction) — exactly the
// key the degree-histogram lookup that produced the estimate used. The
// store counts observations per key; once a key accumulates
// driftRefreshAfter of them, the matching cached histogram is retired
// and the stats version bumps, so every cached plan re-plans against a
// freshly computed histogram. That heals the window where the store's
// shape moved enough to mislead the cost model but stayed under the
// statsDrift materiality threshold that would have bumped the version
// on its own (drift detection is per-key and observation-driven, where
// materiality is global and count-driven).

// DriftKey identifies the degree histogram an estimate came from.
type DriftKey struct {
	Label    string // source label ("" = all nodes)
	EdgeType string // "" = all edge types
	Dir      Direction
}

// DriftStat is one key's accumulated drift observations.
type DriftStat struct {
	Key        DriftKey
	Count      int64   // observations recorded for this key
	Refreshes  int64   // histogram retirements this key triggered
	LastEst    float64 // estimate of the most recent observation
	LastActual float64 // observed cardinality of the most recent observation
}

type driftEntry struct {
	count      int64
	refreshes  int64
	sinceFresh int64 // observations since the last refresh
	lastEst    float64
	lastActual float64
}

// driftRefreshAfter is how many drift observations of one key trigger a
// histogram refresh. Greater than one so a single anomalous query (a
// hub-heavy parameter binding, say) cannot thrash the plan cache.
const driftRefreshAfter = 3

var (
	mDriftObserved = metrics.NewCounter("skg_cardinality_drift_total",
		"Estimate-vs-actual cardinality drift observations reported by EXPLAIN ANALYZE.")
	mDriftRefreshes = metrics.NewCounter("skg_cardinality_drift_refreshes_total",
		"Degree-histogram refreshes (with stats-version bumps) triggered by accumulated drift.")
)

// RecordEstimateDrift records one estimate-vs-actual divergence for the
// histogram identified by key. Every driftRefreshAfter observations of
// a key, the cached histogram behind it is retired and the stats
// version bumps — invalidating cached plans so they re-cost against
// fresh fan-out data.
func (s *Store) RecordEstimateDrift(key DriftKey, est, actual float64) {
	mDriftObserved.Inc()
	s.driftMu.Lock()
	if s.drift == nil {
		s.drift = make(map[DriftKey]*driftEntry)
	}
	d := s.drift[key]
	if d == nil {
		d = &driftEntry{}
		s.drift[key] = d
	}
	d.count++
	d.sinceFresh++
	d.lastEst, d.lastActual = est, actual
	refresh := d.sinceFresh >= driftRefreshAfter
	if refresh {
		d.sinceFresh = 0
		d.refreshes++
	}
	s.driftMu.Unlock()
	if !refresh {
		return
	}
	mDriftRefreshes.Inc()
	// Retire the cached histogram for this key, then advance the stats
	// version: DegreeHistogram recomputes lazily at the new version, and
	// the bump invalidates cached plans priced with the stale value.
	s.histMu.Lock()
	delete(s.histCache, degreeKey{label: key.Label, edgeType: key.EdgeType, dir: key.Dir})
	s.histMu.Unlock()
	s.mu.Lock()
	s.bumpStatsLocked()
	s.mu.Unlock()
}

// DriftStats returns the accumulated drift observations, sorted by key
// for deterministic output.
func (s *Store) DriftStats() []DriftStat {
	s.driftMu.Lock()
	out := make([]DriftStat, 0, len(s.drift))
	for k, d := range s.drift {
		out = append(out, DriftStat{
			Key: k, Count: d.count, Refreshes: d.refreshes,
			LastEst: d.lastEst, LastActual: d.lastActual,
		})
	}
	s.driftMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.EdgeType != b.EdgeType {
			return a.EdgeType < b.EdgeType
		}
		return a.Dir < b.Dir
	})
	return out
}
