package graph

import (
	"sort"

	"securitykg/internal/metrics"
)

// Cardinality-drift feedback: the stats layer's half of EXPLAIN
// ANALYZE. When an analyzed execution observes a stage's actual
// cardinality diverging from the planner's estimate, the engine reports
// it here keyed by (source label, edge type, direction) — exactly the
// key the degree-histogram lookup that produced the estimate used. The
// store counts observations per key; once a key accumulates
// driftRefreshAfter of them, the matching cached histogram is retired
// and the stats version bumps, so every cached plan re-plans against a
// freshly computed histogram. That heals the window where the store's
// shape moved enough to mislead the cost model but stayed under the
// statsDrift materiality threshold that would have bumped the version
// on its own (drift detection is per-key and observation-driven, where
// materiality is global and count-driven).

// DriftKey identifies the degree histogram an estimate came from.
type DriftKey struct {
	Label    string // source label ("" = all nodes)
	EdgeType string // "" = all edge types
	Dir      Direction
}

// DriftStat is one key's accumulated drift observations.
type DriftStat struct {
	Key        DriftKey
	Count      int64   // observations recorded for this key
	Refreshes  int64   // histogram retirements this key triggered
	Suppressed int64   // trips suppressed because the histogram was unchanged
	LastEst    float64 // estimate of the most recent observation
	LastActual float64 // observed cardinality of the most recent observation
}

type driftEntry struct {
	count      int64
	refreshes  int64
	suppressed int64
	sinceFresh int64 // observations since the last refresh (or suppression)
	lastEst    float64
	lastActual float64
	// freshHist remembers the histogram the last refresh recomputed.
	// A later trip whose recomputation matches it is suppressed: the
	// store's shape hasn't moved for this key, so retiring the cache
	// and bumping the stats version would replan every cached query
	// against identical numbers — pure thrash. Heavy-tailed keys (a
	// hub node the histogram's mean can never predict) otherwise
	// re-trip forever, bumping StatsVersion every driftRefreshAfter
	// observations.
	freshHist    DegreeHistogram
	hasFreshHist bool
}

// sameHistogram reports whether two histograms carry identical counts
// (the fields costing reads; Label/EdgeType/Dir are equal by key).
func sameHistogram(a, b DegreeHistogram) bool {
	if a.Sources != b.Sources || a.NonZero != b.NonZero ||
		a.Walks != b.Walks || a.Max != b.Max || len(a.Buckets) != len(b.Buckets) {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

// driftRefreshAfter is how many drift observations of one key trigger a
// histogram refresh. Greater than one so a single anomalous query (a
// hub-heavy parameter binding, say) cannot thrash the plan cache.
const driftRefreshAfter = 3

var (
	mDriftObserved = metrics.NewCounter("skg_cardinality_drift_total",
		"Estimate-vs-actual cardinality drift observations reported by EXPLAIN ANALYZE.")
	mDriftRefreshes = metrics.NewCounter("skg_cardinality_drift_refreshes_total",
		"Degree-histogram refreshes (with stats-version bumps) triggered by accumulated drift.")
	mDriftSuppressed = metrics.NewCounter("skg_cardinality_drift_suppressed_total",
		"Drift trips suppressed because the recomputed histogram was unchanged since the last refresh.")
)

// RecordEstimateDrift records one estimate-vs-actual divergence for the
// histogram identified by key. Every driftRefreshAfter observations of
// a key, the histogram is recomputed; if it actually changed since the
// last refresh, the cached copy is retired and the stats version bumps
// — invalidating cached plans so they re-cost against fresh fan-out
// data. A trip whose recomputation matches the last refresh is
// suppressed (no bump): persistent skew the histogram's summary cannot
// express must not thrash the plan cache forever.
func (s *Store) RecordEstimateDrift(key DriftKey, est, actual float64) {
	mDriftObserved.Inc()
	s.driftMu.Lock()
	if s.drift == nil {
		s.drift = make(map[DriftKey]*driftEntry)
	}
	d := s.drift[key]
	if d == nil {
		d = &driftEntry{}
		s.drift[key] = d
	}
	d.count++
	d.sinceFresh++
	d.lastEst, d.lastActual = est, actual
	tripped := d.sinceFresh >= driftRefreshAfter
	if tripped {
		d.sinceFresh = 0
	}
	s.driftMu.Unlock()
	if !tripped {
		return
	}
	// Recompute eagerly so the trip can be judged: unchanged fan-out
	// data means the refresh would replan every cached query against
	// identical numbers. The computation is the same one a real refresh
	// pays lazily, so a suppressed trip costs no more than a refresh.
	h := s.computeDegreeHistogram(key.Label, key.EdgeType, key.Dir)
	s.driftMu.Lock()
	if d.hasFreshHist && sameHistogram(h, d.freshHist) {
		d.suppressed++
		s.driftMu.Unlock()
		mDriftSuppressed.Inc()
		return
	}
	d.freshHist, d.hasFreshHist = h, true
	d.refreshes++
	s.driftMu.Unlock()
	mDriftRefreshes.Inc()
	// Retire the cached histogram for this key, then advance the stats
	// version: DegreeHistogram recomputes lazily at the new version, and
	// the bump invalidates cached plans priced with the stale value.
	s.histMu.Lock()
	delete(s.histCache, degreeKey{label: key.Label, edgeType: key.EdgeType, dir: key.Dir})
	s.histMu.Unlock()
	s.mu.Lock()
	s.bumpStatsLocked()
	s.mu.Unlock()
}

// DriftStats returns the accumulated drift observations, sorted by key
// for deterministic output.
func (s *Store) DriftStats() []DriftStat {
	s.driftMu.Lock()
	out := make([]DriftStat, 0, len(s.drift))
	for k, d := range s.drift {
		out = append(out, DriftStat{
			Key: k, Count: d.count, Refreshes: d.refreshes, Suppressed: d.suppressed,
			LastEst: d.lastEst, LastActual: d.lastActual,
		})
	}
	s.driftMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.EdgeType != b.EdgeType {
			return a.EdgeType < b.EdgeType
		}
		return a.Dir < b.Dir
	})
	return out
}
