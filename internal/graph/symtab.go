package graph

// Symbol interning: labels, edge types, and attribute names are a tiny,
// heavily repeated vocabulary (an ontology's worth of strings spread
// over millions of nodes and edges). The store interns each distinct
// string once into a dense uint32 symbol and keys every internal index
// on the symbol instead of the string, so the hot paths — merge-index
// probes, edge-key probes, type filters during expansion, statistics
// rekeying — compare and hash 4-byte integers, and every node label in
// memory shares one heap copy of its string. The exported API stays
// string-typed: symbols resolve at the boundary via the table, which is
// a plain slice index.
//
// The design follows janus-datalog's datalog/intern.go lineage (cited
// in ROADMAP item 3): a per-store table, dense IDs in intern order, no
// global state. The table only grows; symbols are never reused, so a
// Sym resolved once stays valid for the store's lifetime.

// Sym is a dense interned-string ID. Sym 0 is always the empty string,
// so zero values resolve to "".
type Sym uint32

// symNone is a sentinel that matches no interned string; lookups of
// unknown strings return it so type filters against a string the store
// has never seen compare unequal to every real symbol.
const symNone = Sym(^uint32(0))

// symtab is the per-store intern table. It is guarded by the store's
// mutex: interning happens under the write lock, resolution under
// either lock (resolution is a slice read of an append-only slice).
type symtab struct {
	strs []string
	ids  map[string]Sym
}

func newSymtab() *symtab {
	t := &symtab{strs: make([]string, 1, 16), ids: make(map[string]Sym, 16)}
	t.strs[0] = ""
	t.ids[""] = 0
	return t
}

// intern returns the symbol for s, assigning the next dense ID on first
// sight.
func (t *symtab) intern(s string) Sym {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := Sym(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

// lookup returns the symbol for s without interning; symNone when the
// store has never seen the string.
func (t *symtab) lookup(s string) Sym {
	if id, ok := t.ids[s]; ok {
		return id
	}
	return symNone
}

// str resolves a symbol back to its string. Resolving symNone or an
// out-of-range symbol returns "" (never panics: symbols only enter the
// system through intern/lookup).
func (t *symtab) str(id Sym) string {
	if int(id) < len(t.strs) {
		return t.strs[id]
	}
	return ""
}

// canon returns the canonical (interned) copy of s, interning it if
// new. Using the canonical string as a map key or struct field lets
// every occurrence share one heap allocation.
func (t *symtab) canon(s string) string {
	return t.strs[t.intern(s)]
}

// count returns the number of interned symbols, including "".
func (t *symtab) count() int { return len(t.strs) }
