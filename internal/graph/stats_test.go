package graph

import (
	"bytes"
	"fmt"
	"testing"
)

func buildStatsStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	s.IndexAttr("platform")
	var mals []NodeID
	for i := 0; i < 10; i++ {
		plat := "windows"
		if i%2 == 1 {
			plat = "linux"
		}
		id, _ := s.MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"platform": plat})
		mals = append(mals, id)
	}
	for i := 0; i < 30; i++ {
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		if _, _, err := s.AddEdge(mals[i%len(mals)], "CONNECT", ip, nil); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := s.MergeNode("ThreatActor", "actor", map[string]string{"platform": "windows"})
	s.AddEdge(mals[0], "ATTRIBUTED_TO", a, nil)
	return s
}

func TestCounts(t *testing.T) {
	s := buildStatsStore(t)
	if got := s.CountNodes(); got != 41 {
		t.Errorf("CountNodes = %d, want 41", got)
	}
	if got := s.CountEdges(); got != 31 {
		t.Errorf("CountEdges = %d, want 31", got)
	}
	if got := s.CountByType("Malware"); got != 10 {
		t.Errorf("CountByType(Malware) = %d, want 10", got)
	}
	if got := s.CountByType("Nope"); got != 0 {
		t.Errorf("CountByType(Nope) = %d, want 0", got)
	}
	if got := s.CountByName("m-3"); got != 1 {
		t.Errorf("CountByName = %d, want 1", got)
	}
	if got := s.CountByTypeName("Malware", "m-3"); got != 1 {
		t.Errorf("CountByTypeName hit = %d, want 1", got)
	}
	if got := s.CountByTypeName("IP", "m-3"); got != 0 {
		t.Errorf("CountByTypeName miss = %d, want 0", got)
	}
	if got := s.CountEdgesByType("CONNECT"); got != 30 {
		t.Errorf("CountEdgesByType(CONNECT) = %d, want 30", got)
	}
}

func TestCountByAttrIndexed(t *testing.T) {
	s := buildStatsStore(t)
	n, ok := s.CountByAttr("platform", "windows")
	if !ok || n != 6 { // 5 malware + 1 actor
		t.Errorf("CountByAttr(platform, windows) = %d, %v; want 6, true", n, ok)
	}
	if _, ok := s.CountByAttr("missing", "x"); ok {
		t.Error("CountByAttr on unindexed key should report ok=false")
	}
	n, ok = s.CountByTypeAttr("Malware", "platform", "windows")
	if !ok || n != 5 {
		t.Errorf("CountByTypeAttr = %d, %v; want 5, true", n, ok)
	}
	if !s.HasAttrIndex("platform") || s.HasAttrIndex("missing") {
		t.Error("HasAttrIndex wrong")
	}
}

func TestCompositeIndexTracksMutations(t *testing.T) {
	s := New()
	s.IndexAttr("os")
	id, _ := s.MergeNode("Malware", "x", map[string]string{"os": "win"})
	if n, _ := s.CountByTypeAttr("Malware", "os", "win"); n != 1 {
		t.Fatalf("after insert: %d", n)
	}
	if err := s.SetAttr(id, "os", "mac"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CountByTypeAttr("Malware", "os", "win"); n != 0 {
		t.Errorf("stale composite entry after SetAttr: %d", n)
	}
	if n, _ := s.CountByTypeAttr("Malware", "os", "mac"); n != 1 {
		t.Errorf("missing composite entry after SetAttr: %d", n)
	}
	if err := s.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CountByTypeAttr("Malware", "os", "mac"); n != 0 {
		t.Errorf("stale composite entry after DeleteNode: %d", n)
	}
}

func TestNodesByTypeAttr(t *testing.T) {
	s := buildStatsStore(t)
	got := s.NodesByTypeAttr("Malware", "platform", "linux")
	if len(got) != 5 {
		t.Fatalf("NodesByTypeAttr = %d nodes, want 5", len(got))
	}
	for _, n := range got {
		if n.Type != "Malware" || n.Attrs["platform"] != "linux" {
			t.Errorf("wrong node: %+v", n)
		}
	}
	// Unindexed path scans.
	s2 := New()
	s2.MergeNode("Malware", "a", map[string]string{"fam": "x"})
	s2.MergeNode("Malware", "b", map[string]string{"fam": "y"})
	if got := s2.NodesByTypeAttr("Malware", "fam", "x"); len(got) != 1 || got[0].Name != "a" {
		t.Errorf("scan path: %+v", got)
	}
}

func TestAvgDegreeAndDegreeStats(t *testing.T) {
	s := buildStatsStore(t)
	if got := s.AvgDegree("CONNECT"); got <= 0 || got > 1 {
		t.Errorf("AvgDegree(CONNECT) = %f, want in (0, 1]", got)
	}
	if got := s.AvgDegree(""); got <= 0 {
		t.Errorf("AvgDegree(all) = %f", got)
	}
	avg, max := s.DegreeStats(Out)
	if avg <= 0 || max < 4 { // malware 0 has 3 CONNECT + 1 ATTRIBUTED_TO
		t.Errorf("DegreeStats(Out) = %f, %d", avg, max)
	}
	if empty := New(); func() float64 { a, _ := empty.DegreeStats(Both); return a }() != 0 {
		t.Error("empty store degree should be 0")
	}
}

func TestEdgeTypeCountSurvivesDeleteAndLoad(t *testing.T) {
	s := buildStatsStore(t)
	// Delete one CONNECT edge.
	var victim EdgeID
	s.ForEachEdge(func(e *Edge) bool {
		if e.Type == "CONNECT" {
			victim = e.ID
			return false
		}
		return true
	})
	if err := s.DeleteEdge(victim); err != nil {
		t.Fatal(err)
	}
	if got := s.CountEdgesByType("CONNECT"); got != 29 {
		t.Errorf("after delete: %d, want 29", got)
	}
	// Round-trip through Save/Load.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.CountEdgesByType("CONNECT"); got != 29 {
		t.Errorf("after load: %d, want 29", got)
	}
	if got := len(s2.AllNodeIDs()); got != s.CountNodes() {
		t.Errorf("AllNodeIDs after load: %d, want %d", got, s.CountNodes())
	}
}

func TestNodeIDAccessPaths(t *testing.T) {
	s := buildStatsStore(t)
	if got := s.NodeIDsByType("Malware"); len(got) != 10 {
		t.Errorf("NodeIDsByType: %d, want 10", len(got))
	}
	if got := s.NodeIDsByName("actor"); len(got) != 1 {
		t.Errorf("NodeIDsByName: %d, want 1", len(got))
	}
	if got := s.NodeIDsByAttr("platform", "linux"); len(got) != 5 {
		t.Errorf("NodeIDsByAttr: %d, want 5", len(got))
	}
	if got := s.NodeIDsByAttr("unindexed", "x"); got != nil {
		t.Errorf("NodeIDsByAttr unindexed should be nil, got %v", got)
	}
	if got := s.NodeIDsByTypeAttr("Malware", "platform", "linux"); len(got) != 5 {
		t.Errorf("NodeIDsByTypeAttr: %d, want 5", len(got))
	}
	ids := s.AllNodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("AllNodeIDs not sorted")
		}
	}
}
