package graph

import (
	"bytes"
	"fmt"
	"testing"
)

func buildStatsStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	s.IndexAttr("platform")
	var mals []NodeID
	for i := 0; i < 10; i++ {
		plat := "windows"
		if i%2 == 1 {
			plat = "linux"
		}
		id, _ := s.MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"platform": plat})
		mals = append(mals, id)
	}
	for i := 0; i < 30; i++ {
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.0.%d", i), nil)
		if _, _, err := s.AddEdge(mals[i%len(mals)], "CONNECT", ip, nil); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := s.MergeNode("ThreatActor", "actor", map[string]string{"platform": "windows"})
	s.AddEdge(mals[0], "ATTRIBUTED_TO", a, nil)
	return s
}

func TestCounts(t *testing.T) {
	s := buildStatsStore(t)
	if got := s.CountNodes(); got != 41 {
		t.Errorf("CountNodes = %d, want 41", got)
	}
	if got := s.CountEdges(); got != 31 {
		t.Errorf("CountEdges = %d, want 31", got)
	}
	if got := s.CountByType("Malware"); got != 10 {
		t.Errorf("CountByType(Malware) = %d, want 10", got)
	}
	if got := s.CountByType("Nope"); got != 0 {
		t.Errorf("CountByType(Nope) = %d, want 0", got)
	}
	if got := s.CountByName("m-3"); got != 1 {
		t.Errorf("CountByName = %d, want 1", got)
	}
	if got := s.CountByTypeName("Malware", "m-3"); got != 1 {
		t.Errorf("CountByTypeName hit = %d, want 1", got)
	}
	if got := s.CountByTypeName("IP", "m-3"); got != 0 {
		t.Errorf("CountByTypeName miss = %d, want 0", got)
	}
	if got := s.CountEdgesByType("CONNECT"); got != 30 {
		t.Errorf("CountEdgesByType(CONNECT) = %d, want 30", got)
	}
}

func TestCountByAttrIndexed(t *testing.T) {
	s := buildStatsStore(t)
	n, ok := s.CountByAttr("platform", "windows")
	if !ok || n != 6 { // 5 malware + 1 actor
		t.Errorf("CountByAttr(platform, windows) = %d, %v; want 6, true", n, ok)
	}
	if _, ok := s.CountByAttr("missing", "x"); ok {
		t.Error("CountByAttr on unindexed key should report ok=false")
	}
	n, ok = s.CountByTypeAttr("Malware", "platform", "windows")
	if !ok || n != 5 {
		t.Errorf("CountByTypeAttr = %d, %v; want 5, true", n, ok)
	}
	if !s.HasAttrIndex("platform") || s.HasAttrIndex("missing") {
		t.Error("HasAttrIndex wrong")
	}
}

func TestCompositeIndexTracksMutations(t *testing.T) {
	s := New()
	s.IndexAttr("os")
	id, _ := s.MergeNode("Malware", "x", map[string]string{"os": "win"})
	if n, _ := s.CountByTypeAttr("Malware", "os", "win"); n != 1 {
		t.Fatalf("after insert: %d", n)
	}
	if err := s.SetAttr(id, "os", "mac"); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CountByTypeAttr("Malware", "os", "win"); n != 0 {
		t.Errorf("stale composite entry after SetAttr: %d", n)
	}
	if n, _ := s.CountByTypeAttr("Malware", "os", "mac"); n != 1 {
		t.Errorf("missing composite entry after SetAttr: %d", n)
	}
	if err := s.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.CountByTypeAttr("Malware", "os", "mac"); n != 0 {
		t.Errorf("stale composite entry after DeleteNode: %d", n)
	}
}

func TestNodesByTypeAttr(t *testing.T) {
	s := buildStatsStore(t)
	got := s.NodesByTypeAttr("Malware", "platform", "linux")
	if len(got) != 5 {
		t.Fatalf("NodesByTypeAttr = %d nodes, want 5", len(got))
	}
	for _, n := range got {
		if n.Type != "Malware" || n.Attrs["platform"] != "linux" {
			t.Errorf("wrong node: %+v", n)
		}
	}
	// Unindexed path scans.
	s2 := New()
	s2.MergeNode("Malware", "a", map[string]string{"fam": "x"})
	s2.MergeNode("Malware", "b", map[string]string{"fam": "y"})
	if got := s2.NodesByTypeAttr("Malware", "fam", "x"); len(got) != 1 || got[0].Name != "a" {
		t.Errorf("scan path: %+v", got)
	}
}

func TestDegreeStats(t *testing.T) {
	s := buildStatsStore(t)
	avg, max := s.DegreeStats(Out)
	if avg <= 0 || max < 4 { // malware 0 has 3 CONNECT + 1 ATTRIBUTED_TO
		t.Errorf("DegreeStats(Out) = %f, %d", avg, max)
	}
	if empty := New(); func() float64 { a, _ := empty.DegreeStats(Both); return a }() != 0 {
		t.Error("empty store degree should be 0")
	}
}

func TestEdgeTypeCountSurvivesDeleteAndLoad(t *testing.T) {
	s := buildStatsStore(t)
	// Delete one CONNECT edge.
	var victim EdgeID
	s.ForEachEdge(func(e *Edge) bool {
		if e.Type == "CONNECT" {
			victim = e.ID
			return false
		}
		return true
	})
	if err := s.DeleteEdge(victim); err != nil {
		t.Fatal(err)
	}
	if got := s.CountEdgesByType("CONNECT"); got != 29 {
		t.Errorf("after delete: %d, want 29", got)
	}
	// Round-trip through Save/Load.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.CountEdgesByType("CONNECT"); got != 29 {
		t.Errorf("after load: %d, want 29", got)
	}
	if got := len(s2.AllNodeIDs()); got != s.CountNodes() {
		t.Errorf("AllNodeIDs after load: %d, want %d", got, s.CountNodes())
	}
}

func TestDegreeHistogram(t *testing.T) {
	s := buildStatsStore(t)
	// 10 Malware sources; 30 CONNECT edges spread i%10, so each malware
	// has exactly 3 outgoing CONNECTs (and malware 0 one extra edge of a
	// different type that must not count).
	h := s.DegreeHistogram("Malware", "CONNECT", Out)
	if h.Sources != 10 || h.NonZero != 10 || h.Walks != 30 || h.Max != 3 {
		t.Errorf("Malware/CONNECT/Out = %+v, want 10 sources, 30 walks, max 3", h)
	}
	if got := h.Avg(); got != 3 {
		t.Errorf("Avg = %f, want 3", got)
	}
	// Degree 3 lands in the [2,4) log2 bucket (index 1).
	if len(h.Buckets) != 2 || h.Buckets[1] != 10 {
		t.Errorf("Buckets = %v, want [0 10]", h.Buckets)
	}
	// IPs have no outgoing CONNECTs, one incoming each.
	if h := s.DegreeHistogram("IP", "CONNECT", Out); h.NonZero != 0 || h.Avg() != 0 {
		t.Errorf("IP/CONNECT/Out = %+v, want all-zero", h)
	}
	if h := s.DegreeHistogram("IP", "CONNECT", In); h.Sources != 30 || h.Walks != 30 || h.Max != 1 {
		t.Errorf("IP/CONNECT/In = %+v, want 30 sources each degree 1", h)
	}
	// "" label covers every node; "" type counts all edges; Both sums.
	if h := s.DegreeHistogram("", "", Both); h.Sources != 41 || h.Walks != 62 {
		t.Errorf("all/all/Both = %+v, want 41 sources, 62 walks", h)
	}
	if got := s.DegreeHistogram("Malware", "CONNECT", Out).AvgNonZero(); got != 3 {
		t.Errorf("AvgNonZero = %f, want 3", got)
	}
}

func TestDegreeHistogramCachePerVersion(t *testing.T) {
	s := buildStatsStore(t)
	before := s.DegreeHistogram("Malware", "CONNECT", Out)
	// A non-material write must serve the cached histogram unchanged.
	m0 := s.FindNode("Malware", "m-0")
	ip0 := s.FindNode("IP", "10.0.0.0")
	s.AddEdge(m0.ID, "CONNECT", ip0.ID, map[string]string{"x": "1"}) // dup edge: attr merge only
	if got := s.DegreeHistogram("Malware", "CONNECT", Out); got.Walks != before.Walks {
		t.Errorf("histogram recomputed on non-material write: %+v", got)
	}
	// A material change (bulk insert) must refresh it.
	ver := s.StatsVersion()
	for i := 0; i < 40; i++ {
		id, _ := s.MergeNode("Malware", fmt.Sprintf("new-%d", i), nil)
		s.AddEdge(id, "CONNECT", ip0.ID, nil)
	}
	if s.StatsVersion() == ver {
		t.Fatal("bulk insert did not bump the stats version")
	}
	h := s.DegreeHistogram("Malware", "CONNECT", Out)
	if h.Sources != 50 || h.Walks != 70 {
		t.Errorf("post-bulk histogram = %+v, want 50 sources, 70 walks", h)
	}
}

func TestStatsVersionMaterialityThreshold(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		s.MergeNode("T", fmt.Sprintf("n%d", i), nil)
	}
	ver := s.StatsVersion()
	// Single-row writes on a 200-node store are immaterial.
	id, _ := s.MergeNode("T", "extra", nil)
	if err := s.SetAttr(id, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteNode(id); err != nil {
		t.Fatal(err)
	}
	if s.StatsVersion() != ver {
		t.Fatalf("immaterial writes bumped the stats version")
	}
	// Growing the store by >12.5% is material.
	for i := 0; i < 40; i++ {
		s.MergeNode("T", fmt.Sprintf("grow%d", i), nil)
	}
	if s.StatsVersion() == ver {
		t.Fatal("material growth did not bump the stats version")
	}
	// A small label drifting materially bumps even when totals barely move.
	ver = s.StatsVersion()
	for i := 0; i < 8; i++ {
		s.MergeNode("Rare", fmt.Sprintf("r%d", i), nil)
	}
	if s.StatsVersion() == ver {
		t.Fatal("new label's growth did not bump the stats version")
	}
	// IndexAttr always bumps: it creates a new access path.
	ver = s.StatsVersion()
	s.IndexAttr("k")
	if s.StatsVersion() == ver {
		t.Fatal("IndexAttr did not bump the stats version")
	}
}

func TestStatsVersionTracksIndexedAttrSpread(t *testing.T) {
	// AvgAttrBucket (nodes per distinct indexed value) is a plan-time
	// input: an indexed key spreading from one value to many is material
	// even though no node/label/edge count moves.
	s := New()
	s.IndexAttr("family")
	var ids []NodeID
	for i := 0; i < 200; i++ {
		id, _ := s.MergeNode("T", fmt.Sprintf("n%d", i), map[string]string{"family": "unknown"})
		ids = append(ids, id)
	}
	ver := s.StatsVersion()
	// A couple of re-labels: immaterial.
	s.SetAttr(ids[0], "family", "emotet")
	if s.StatsVersion() != ver {
		t.Fatal("single indexed-attr write was treated as material")
	}
	// Spreading across dozens of distinct values: material.
	for i, id := range ids[:60] {
		if err := s.SetAttr(id, "family", fmt.Sprintf("fam-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.StatsVersion() == ver {
		t.Fatal("indexed attribute spreading across values did not bump the stats version")
	}
}

func TestStatsVersionTracksDistinctNameDrift(t *testing.T) {
	// AvgNameBucket (nodes / distinct names) is a plan-time input too: a
	// store whose node count stays flat while its names spread from a few
	// shared buckets to mostly-unique is a material change.
	s := New()
	var ids []NodeID
	for i := 0; i < 200; i++ {
		// 200 nodes over 4 shared names (distinct labels keep (type,name) unique).
		id, _ := s.MergeNode(fmt.Sprintf("T%d", i), fmt.Sprintf("shared-%d", i%4), nil)
		ids = append(ids, id)
	}
	ver := s.StatsVersion()
	// Rename churn via delete+merge pairs: totals stay inside the drift
	// bound, but distinct names climb 4 -> ~24.
	for i := 0; i < 20; i++ {
		if err := s.DeleteNode(ids[i]); err != nil {
			t.Fatal(err)
		}
		s.MergeNode(fmt.Sprintf("T%d", i), fmt.Sprintf("unique-%d", i), nil)
	}
	if s.StatsVersion() == ver {
		t.Fatal("distinct-name spread did not bump the stats version")
	}
}

func TestStatsVersionRebasedOnLoad(t *testing.T) {
	s := buildStatsStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ver := s2.StatsVersion()
	// The loaded store's base is its loaded size, so a single write on it
	// is immaterial — not a drift from an empty base.
	s2.MergeNode("Malware", "fresh", nil)
	if s2.StatsVersion() != ver {
		t.Fatal("single write after Load was treated as material")
	}
}

func TestNodeIDAccessPaths(t *testing.T) {
	s := buildStatsStore(t)
	if got := s.NodeIDsByType("Malware"); len(got) != 10 {
		t.Errorf("NodeIDsByType: %d, want 10", len(got))
	}
	if got := s.NodeIDsByName("actor"); len(got) != 1 {
		t.Errorf("NodeIDsByName: %d, want 1", len(got))
	}
	if got := s.NodeIDsByAttr("platform", "linux"); len(got) != 5 {
		t.Errorf("NodeIDsByAttr: %d, want 5", len(got))
	}
	if got := s.NodeIDsByAttr("unindexed", "x"); got != nil {
		t.Errorf("NodeIDsByAttr unindexed should be nil, got %v", got)
	}
	if got := s.NodeIDsByTypeAttr("Malware", "platform", "linux"); len(got) != 5 {
		t.Errorf("NodeIDsByTypeAttr: %d, want 5", len(got))
	}
	ids := s.AllNodeIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("AllNodeIDs not sorted")
		}
	}
}
