// Package layout implements the force-directed graph layout behind the
// exploration UI: repulsive forces computed either exactly (O(N²), the
// baseline) or with the Barnes-Hut quadtree approximation the paper cites
// (O(N log N)), plus spring attraction along edges, per-iteration cooling,
// and position pinning for dragged nodes.
package layout

import (
	"math"
	"math/rand"
)

// Point is a 2-D position or force vector.
type Point struct {
	X, Y float64
}

// Graph is the minimal view the engine needs: node count and edge list
// (indices into the node range).
type Graph struct {
	N     int
	Edges [][2]int
}

// Config tunes the simulation.
type Config struct {
	// Theta is the Barnes-Hut opening angle: a cell of width w at distance
	// d is treated as one body when w/d < Theta. 0.5 is the classic value;
	// 0 degenerates to exact computation.
	Theta float64
	// Repulsion scales the pairwise repulsive force (default 5000).
	Repulsion float64
	// Spring scales edge attraction (default 0.02).
	Spring float64
	// SpringLength is the rest length of edges (default 80).
	SpringLength float64
	// Damping multiplies displacement per iteration (default 0.85).
	Damping float64
	// MaxStep caps per-iteration displacement (default 30).
	MaxStep float64
	// Cooling multiplies the force temperature each step (default 0.995);
	// as the temperature decays the simulation settles, guaranteeing
	// convergence.
	Cooling float64
	// Exact forces the O(N²) repulsion path (the ablation baseline).
	Exact bool
}

func (c *Config) defaults() {
	if c.Theta <= 0 {
		c.Theta = 0.5
	}
	if c.Repulsion <= 0 {
		c.Repulsion = 5000
	}
	if c.Spring <= 0 {
		c.Spring = 0.02
	}
	if c.SpringLength <= 0 {
		c.SpringLength = 80
	}
	if c.Damping <= 0 {
		c.Damping = 0.85
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 30
	}
	if c.Cooling <= 0 || c.Cooling >= 1 {
		c.Cooling = 0.995
	}
}

// Engine runs the simulation over mutable positions.
type Engine struct {
	cfg    Config
	g      Graph
	Pos    []Point
	pinned []bool
	vel    []Point
	temp   float64
}

// NewEngine seeds positions deterministically on a disk.
func NewEngine(g Graph, cfg Config, seed int64) *Engine {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	e := &Engine{
		cfg:    cfg,
		g:      g,
		Pos:    make([]Point, g.N),
		pinned: make([]bool, g.N),
		vel:    make([]Point, g.N),
		temp:   1,
	}
	// Seed on a disk whose radius grows with sqrt(N): constant initial
	// density regardless of graph size, so force magnitudes and the
	// Barnes-Hut approximation error are comparable across scales.
	radius := 20 * math.Sqrt(float64(g.N)+1)
	for i := range e.Pos {
		r := radius * math.Sqrt(rng.Float64())
		a := 2 * math.Pi * rng.Float64()
		e.Pos[i] = Point{X: r * math.Cos(a), Y: r * math.Sin(a)}
	}
	return e
}

// Pin locks a node in place (the UI's dragged-node lock); Unpin releases.
func (e *Engine) Pin(i int) { e.pinned[i] = true }

// Unpin releases a pinned node.
func (e *Engine) Unpin(i int) { e.pinned[i] = false }

// SetPos moves a node (drag) and pins it.
func (e *Engine) SetPos(i int, p Point) {
	e.Pos[i] = p
	e.pinned[i] = true
}

// Step advances the simulation one iteration and returns the total
// displacement (a convergence signal).
func (e *Engine) Step() float64 {
	forces := e.RepulsiveForces(nil)
	// Spring attraction along edges.
	for _, ed := range e.g.Edges {
		a, b := ed[0], ed[1]
		dx := e.Pos[b].X - e.Pos[a].X
		dy := e.Pos[b].Y - e.Pos[a].Y
		dist := math.Hypot(dx, dy)
		if dist < 1e-9 {
			continue
		}
		f := e.cfg.Spring * (dist - e.cfg.SpringLength)
		fx := f * dx / dist
		fy := f * dy / dist
		forces[a].X += fx
		forces[a].Y += fy
		forces[b].X -= fx
		forces[b].Y -= fy
	}
	var moved float64
	for i := range e.Pos {
		if e.pinned[i] {
			continue
		}
		e.vel[i].X = (e.vel[i].X + forces[i].X*e.temp) * e.cfg.Damping
		e.vel[i].Y = (e.vel[i].Y + forces[i].Y*e.temp) * e.cfg.Damping
		step := math.Hypot(e.vel[i].X, e.vel[i].Y)
		scale := 1.0
		if step > e.cfg.MaxStep {
			scale = e.cfg.MaxStep / step
		}
		dx := e.vel[i].X * scale
		dy := e.vel[i].Y * scale
		e.Pos[i].X += dx
		e.Pos[i].Y += dy
		moved += math.Hypot(dx, dy)
	}
	e.temp *= e.cfg.Cooling
	return moved
}

// Run iterates until the total displacement per node falls below eps or
// maxIter is reached, returning the iterations used.
func (e *Engine) Run(maxIter int, eps float64) int {
	for it := 1; it <= maxIter; it++ {
		if e.Step()/float64(e.g.N+1) < eps {
			return it
		}
	}
	return maxIter
}

// RepulsiveForces computes the repulsion component for every node, using
// Barnes-Hut unless cfg.Exact is set. If out is non-nil it is reused.
func (e *Engine) RepulsiveForces(out []Point) []Point {
	if out == nil || len(out) != e.g.N {
		out = make([]Point, e.g.N)
	} else {
		for i := range out {
			out[i] = Point{}
		}
	}
	if e.cfg.Exact {
		e.exactRepulsion(out)
		return out
	}
	e.barnesHutRepulsion(out)
	return out
}

// jitterDir gives node i a deterministic unit direction (golden-angle
// spiral) used to break ties between (near-)coincident nodes: without it,
// coincident clusters saturate the step cap in one shared direction and
// translate together instead of separating.
func jitterDir(i int) (float64, float64) {
	a := float64(i) * 2.39996322972865332 // golden angle
	return math.Cos(a), math.Sin(a)
}

func (e *Engine) exactRepulsion(out []Point) {
	k := e.cfg.Repulsion
	for i := 0; i < e.g.N; i++ {
		for j := i + 1; j < e.g.N; j++ {
			dx := e.Pos[i].X - e.Pos[j].X
			dy := e.Pos[i].Y - e.Pos[j].Y
			d2 := dx*dx + dy*dy
			if d2 < 1 {
				d2 = 1
				jx, jy := jitterDir(i*31 + j)
				dx, dy = jx, jy
			}
			f := k / d2
			d := math.Sqrt(d2)
			fx := f * dx / d
			fy := f * dy / d
			out[i].X += fx
			out[i].Y += fy
			out[j].X -= fx
			out[j].Y -= fy
		}
	}
}

// --- Barnes-Hut quadtree ---

type bhNode struct {
	// Cell bounds.
	x0, y0, x1, y1 float64
	// Aggregate mass (node count) and center of mass.
	mass   float64
	cx, cy float64
	// Leaf payload: index of the single body (-1 when internal/empty).
	body   int
	bx, by float64 // leaf body's exact position
	kids   [4]*bhNode
	leaf   bool
}

func newCell(x0, y0, x1, y1 float64) *bhNode {
	return &bhNode{x0: x0, y0: y0, x1: x1, y1: y1, body: -1, leaf: true}
}

func (n *bhNode) quadrant(x, y float64) int {
	mx := (n.x0 + n.x1) / 2
	my := (n.y0 + n.y1) / 2
	q := 0
	if x > mx {
		q |= 1
	}
	if y > my {
		q |= 2
	}
	return q
}

func (n *bhNode) child(q int) *bhNode {
	if n.kids[q] == nil {
		mx := (n.x0 + n.x1) / 2
		my := (n.y0 + n.y1) / 2
		switch q {
		case 0:
			n.kids[q] = newCell(n.x0, n.y0, mx, my)
		case 1:
			n.kids[q] = newCell(mx, n.y0, n.x1, my)
		case 2:
			n.kids[q] = newCell(n.x0, my, mx, n.y1)
		case 3:
			n.kids[q] = newCell(mx, my, n.x1, n.y1)
		}
	}
	return n.kids[q]
}

func (n *bhNode) insert(i int, x, y float64, depth int) {
	n.mass++
	n.cx += (x - n.cx) / n.mass
	n.cy += (y - n.cy) / n.mass
	if n.leaf {
		if n.body < 0 {
			n.body = i
			n.bx, n.by = x, y
			return
		}
		if depth > 48 {
			// Coincident points: keep aggregated in this cell.
			return
		}
		// Split: push the existing body down.
		old := n.body
		ox, oy := n.bx, n.by
		n.body = -1
		n.leaf = false
		n.child(n.quadrant(ox, oy)).insert(old, ox, oy, depth+1)
		n.child(n.quadrant(x, y)).insert(i, x, y, depth+1)
		return
	}
	n.child(n.quadrant(x, y)).insert(i, x, y, depth+1)
}

func (e *Engine) barnesHutRepulsion(out []Point) {
	if e.g.N == 0 {
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range e.Pos {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	size := math.Max(maxX-minX, maxY-minY) + 1
	root := newCell(minX, minY, minX+size, minY+size)
	for i, p := range e.Pos {
		root.insert(i, p.X, p.Y, 0)
	}
	k := e.cfg.Repulsion
	theta2 := e.cfg.Theta * e.cfg.Theta
	var apply func(n *bhNode, i int)
	apply = func(n *bhNode, i int) {
		if n == nil || n.mass == 0 {
			return
		}
		px, py := e.Pos[i].X, e.Pos[i].Y
		dx := px - n.cx
		dy := py - n.cy
		d2 := dx*dx + dy*dy
		w := n.x1 - n.x0
		if n.leaf || w*w < theta2*d2 {
			mass := n.mass
			if n.leaf && n.body == i {
				// Exclude self from a leaf that only holds this body.
				mass--
				if mass <= 0 {
					return
				}
			}
			if d2 < 1 {
				d2 = 1
				dx, dy = jitterDir(i)
			}
			d := math.Sqrt(d2)
			f := k * mass / d2
			out[i].X += f * dx / d
			out[i].Y += f * dy / d
			return
		}
		for _, kid := range n.kids {
			apply(kid, i)
		}
	}
	for i := range e.Pos {
		apply(root, i)
	}
}

// ForceError measures the mean relative error of Barnes-Hut forces against
// the exact computation on the current positions (the accuracy side of the
// E12 trade-off).
func (e *Engine) ForceError() float64 {
	exactCfg := e.cfg
	exactCfg.Exact = true
	exactEng := &Engine{cfg: exactCfg, g: e.g, Pos: e.Pos}
	exact := exactEng.RepulsiveForces(nil)
	approx := e.RepulsiveForces(nil)
	var errSum float64
	n := 0
	for i := range exact {
		em := math.Hypot(exact[i].X, exact[i].Y)
		if em < 1e-12 {
			continue
		}
		diff := math.Hypot(exact[i].X-approx[i].X, exact[i].Y-approx[i].Y)
		errSum += diff / em
		n++
	}
	if n == 0 {
		return 0
	}
	return errSum / float64(n)
}
