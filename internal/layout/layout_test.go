package layout

import (
	"math"
	"math/rand"
	"testing"
)

// ring builds a ring graph of n nodes.
func ring(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, (i + 1) % n})
	}
	return g
}

// randomGraph builds a sparse random graph.
func randomGraph(n int, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{rng.Intn(i), i})
	}
	return g
}

func TestBarnesHutApproximatesExactForces(t *testing.T) {
	for _, n := range []int{50, 300} {
		e := NewEngine(randomGraph(n, 1), Config{Theta: 0.5}, 1)
		err := e.ForceError()
		if err > 0.08 {
			t.Errorf("n=%d: mean relative force error %.4f, want <= 0.08", n, err)
		}
		if err == 0 {
			t.Errorf("n=%d: zero error is suspicious (BH should approximate)", n)
		}
	}
}

func TestThetaTradeoff(t *testing.T) {
	g := randomGraph(400, 2)
	tight := NewEngine(g, Config{Theta: 0.2}, 3)
	loose := NewEngine(g, Config{Theta: 1.2}, 3)
	if te, le := tight.ForceError(), loose.ForceError(); te >= le {
		t.Errorf("smaller theta should be more accurate: θ=0.2 err %.4f vs θ=1.2 err %.4f", te, le)
	}
}

func TestStepSeparatesCoincidentCluster(t *testing.T) {
	g := Graph{N: 10}
	e := NewEngine(g, Config{}, 5)
	for i := range e.Pos {
		e.Pos[i] = Point{X: 0.001 * float64(i), Y: 0}
	}
	for i := 0; i < 50; i++ {
		e.Step()
	}
	// Repulsion must spread the nodes out.
	minDist := math.Inf(1)
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			d := math.Hypot(e.Pos[i].X-e.Pos[j].X, e.Pos[i].Y-e.Pos[j].Y)
			minDist = math.Min(minDist, d)
		}
	}
	if minDist < 5 {
		t.Errorf("nodes did not separate: min distance %.3f", minDist)
	}
}

func TestSpringsPullConnectedNodesToRestLength(t *testing.T) {
	g := Graph{N: 2, Edges: [][2]int{{0, 1}}}
	e := NewEngine(g, Config{SpringLength: 80}, 7)
	e.Pos[0] = Point{X: -500, Y: 0}
	e.Pos[1] = Point{X: 500, Y: 0}
	e.Run(500, 1e-4)
	d := math.Hypot(e.Pos[0].X-e.Pos[1].X, e.Pos[0].Y-e.Pos[1].Y)
	if d < 40 || d > 400 {
		t.Errorf("edge length after layout: %.1f, expected near rest length", d)
	}
}

func TestPinnedNodesDoNotMove(t *testing.T) {
	e := NewEngine(ring(12), Config{}, 9)
	e.SetPos(0, Point{X: 123, Y: -45})
	for i := 0; i < 30; i++ {
		e.Step()
	}
	if e.Pos[0].X != 123 || e.Pos[0].Y != -45 {
		t.Errorf("pinned node moved: %+v", e.Pos[0])
	}
	e.Unpin(0)
	e.Step()
	if e.Pos[0].X == 123 && e.Pos[0].Y == -45 {
		t.Error("unpinned node should move again")
	}
}

func TestRunConverges(t *testing.T) {
	e := NewEngine(ring(30), Config{}, 11)
	iters := e.Run(2000, 1e-3)
	if iters >= 2000 {
		t.Errorf("layout did not converge in %d iterations", iters)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := ring(20)
	a := NewEngine(g, Config{}, 42)
	b := NewEngine(g, Config{}, 42)
	for i := 0; i < 10; i++ {
		a.Step()
		b.Step()
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestEmptyAndSingleNodeGraphs(t *testing.T) {
	e := NewEngine(Graph{N: 0}, Config{}, 1)
	if got := e.Step(); got != 0 {
		t.Errorf("empty graph step moved %f", got)
	}
	e1 := NewEngine(Graph{N: 1}, Config{}, 1)
	e1.Step() // must not panic; single body has no repulsion partner
}

func TestExactMatchesBruteForceSymmetry(t *testing.T) {
	// Newton's third law: exact forces sum to ~zero.
	e := NewEngine(randomGraph(60, 13), Config{Exact: true}, 13)
	forces := e.RepulsiveForces(nil)
	var sx, sy float64
	for _, f := range forces {
		sx += f.X
		sy += f.Y
	}
	if math.Abs(sx) > 1e-6 || math.Abs(sy) > 1e-6 {
		t.Errorf("force sum (%g, %g) should vanish", sx, sy)
	}
}

func TestCoincidentPointsDoNotPanicBarnesHut(t *testing.T) {
	g := Graph{N: 5}
	e := NewEngine(g, Config{}, 1)
	for i := range e.Pos {
		e.Pos[i] = Point{X: 1, Y: 1} // identical positions: deep split guard
	}
	e.RepulsiveForces(nil) // must not stack-overflow
}
