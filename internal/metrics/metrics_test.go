package metrics

import (
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_ops_total", "Total ops.")
	g := r.NewGauge("t_depth", "Current depth.")
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Add(-2)
	out := r.String()
	for _, want := range []string{
		"# HELP t_ops_total Total ops.\n# TYPE t_ops_total counter\nt_ops_total 3\n",
		"# TYPE t_depth gauge\nt_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is exposition order.
	if strings.Index(out, "t_ops_total") > strings.Index(out, "t_depth") {
		t.Fatalf("registration order not preserved:\n%s", out)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("t_same", "h")
	b := r.NewCounter("t_same", "h")
	if a != b {
		t.Fatal("re-registering a counter should return the existing one")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters should share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type clash should panic")
		}
	}()
	r.NewGauge("t_same", "h")
}

func TestGaugeFuncRewire(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("t_fn", "h", func() float64 { return 1 })
	r.GaugeFunc("t_fn", "h", func() float64 { return 42.5 })
	out := r.String()
	if !strings.Contains(out, "t_fn 42.5\n") {
		t.Fatalf("gauge func not rewired:\n%s", out)
	}
	if strings.Count(out, "# TYPE t_fn gauge") != 1 {
		t.Fatalf("gauge func registered twice:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("t_lat_seconds", "h", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := r.String()
	for _, want := range []string{
		`t_lat_seconds_bucket{le="0.01"} 1`,
		`t_lat_seconds_bucket{le="0.1"} 3`,
		`t_lat_seconds_bucket{le="1"} 4`,
		`t_lat_seconds_bucket{le="+Inf"} 5`,
		`t_lat_seconds_sum 5.605`,
		`t_lat_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("t_kind_total", "h", []string{"kind"})
	v.With("write").Add(2)
	v.With("read").Add(5)
	v.With("read").Inc()
	out := r.String()
	read := strings.Index(out, `t_kind_total{kind="read"} 6`)
	write := strings.Index(out, `t_kind_total{kind="write"} 2`)
	if read < 0 || write < 0 || read > write {
		t.Fatalf("labeled children must render sorted:\n%s", out)
	}

	hv := r.NewHistogramVec("t_rows", "h", []string{"kind"}, []float64{1, 10})
	hv.With("read").Observe(3)
	out = r.String()
	for _, want := range []string{
		`t_rows_bucket{kind="read",le="1"} 0`,
		`t_rows_bucket{kind="read",le="10"} 1`,
		`t_rows_bucket{kind="read",le="+Inf"} 1`,
		`t_rows_sum{kind="read"} 3`,
		`t_rows_count{kind="read"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram vec missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("t_esc_total", "h", []string{"q"})
	v.With("a\"b\\c\nd").Inc()
	out := r.String()
	if !strings.Contains(out, `t_esc_total{q="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}
