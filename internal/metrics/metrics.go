// Package metrics is a small, dependency-free metrics registry with
// Prometheus text exposition (version 0.0.4). It exists so the store,
// query engine, WAL and replication layers can export runtime counters
// without pulling a client library into the module: counters and gauges
// are atomic int64s, histograms use fixed buckets, and exposition is
// deterministic — collectors render in registration order, labeled
// children in sorted label order — so scrapes diff cleanly.
//
// Two kinds of registries cooperate:
//
//   - the process-wide Default registry holds event counters owned by
//     the subsystems themselves (WAL appends, plan-cache hits, tx
//     commits). Registration is idempotent by name, so package-level
//     metric vars are safe across tests.
//   - per-instance registries (e.g. one per server) hold gauge
//     functions closed over a specific store or replicator, so two
//     nodes in one process (a leader and a follower under test) never
//     fight over one gauge.
//
// An HTTP /metrics endpoint writes both.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// collector is one named metric family that can render itself.
type collector interface {
	metricName() string
	write(w io.Writer)
}

// Registry holds collectors in registration order.
type Registry struct {
	mu     sync.Mutex
	order  []collector
	byName map[string]collector
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]collector{}}
}

// std is the process-wide default registry.
var std = NewRegistry()

// register adds c under its name. Re-registering a name returns the
// existing collector when its concrete type matches (idempotent — the
// pattern package-level metric vars rely on) and panics on a type
// clash, which is always a programming error worth failing loudly on.
func (r *Registry) register(c collector) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[c.metricName()]; ok {
		if fmt.Sprintf("%T", prev) != fmt.Sprintf("%T", c) {
			panic(fmt.Sprintf("metrics: %s re-registered as a different type (%T vs %T)", c.metricName(), c, prev))
		}
		return prev
	}
	r.byName[c.metricName()] = c
	r.order = append(r.order, c)
	return c
}

// Render renders every collector in registration order.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	order := make([]collector, len(r.order))
	copy(order, r.order)
	r.mu.Unlock()
	for _, c := range order {
		c.write(w)
	}
}

// String renders the registry as one exposition document.
func (r *Registry) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

// Render renders the process-wide default registry.
func Render(w io.Writer) { std.Render(w) }

// String renders the process-wide default registry as one document.
func String() string { return std.String() }

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} for aligned name/value slices.
func labelString(names, vals []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// --- counter ---

// Counter is a monotonically increasing integer.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers a counter on reg.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(&Counter{name: name, help: help}).(*Counter)
}

// NewCounter registers a counter on the default registry.
func NewCounter(name, help string) *Counter { return std.NewCounter(name, help) }

func (c *Counter) metricName() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) write(w io.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// --- gauge ---

// Gauge is a settable integer value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers a gauge on reg.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(&Gauge{name: name, help: help}).(*Gauge)
}

// NewGauge registers a gauge on the default registry.
func NewGauge(name, help string) *Gauge { return std.NewGauge(name, help) }

func (g *Gauge) metricName() string { return g.name }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// --- gauge func ---

// gaugeFunc samples a callback at scrape time — the shape instance
// state (store sizes, replication lag) exports through.
type gaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a callback-backed gauge on reg.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		// Re-wiring an instance gauge (a test rebuilding its server)
		// replaces the sampled closure in place.
		if g, ok := prev.(*gaugeFunc); ok {
			g.fn = fn
			return
		}
		panic(fmt.Sprintf("metrics: %s re-registered as a different type", name))
	}
	g := &gaugeFunc{name: name, help: help, fn: fn}
	r.byName[name] = g
	r.order = append(r.order, g)
}

func (g *gaugeFunc) metricName() string { return g.name }

func (g *gaugeFunc) write(w io.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, fmtFloat(g.fn()))
}

// --- histogram ---

// DurationBuckets are the fixed latency buckets (seconds) used across
// the query and checkpoint histograms.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are the fixed size buckets (rows, records) used by the
// volume histograms.
var CountBuckets = []float64{0, 1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 100000}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	name, help string
	labelNames []string // nil for a bare histogram
	labelVals  []string
	uppers     []float64
	counts     []atomic.Int64 // one per upper, non-cumulative
	count      atomic.Int64
	sumBits    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(name, help string, uppers []float64) *Histogram {
	h := &Histogram{name: name, help: help, uppers: uppers}
	h.counts = make([]atomic.Int64, len(uppers))
	return h
}

// NewHistogram registers an unlabeled fixed-bucket histogram on reg.
// Buckets must be sorted ascending; the +Inf bucket is implicit.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	return r.register(newHistogram(name, help, buckets)).(*Histogram)
}

// NewHistogram registers a histogram on the default registry.
func NewHistogram(name, help string, buckets []float64) *Histogram {
	return std.NewHistogram(name, help, buckets)
}

func (h *Histogram) metricName() string { return h.name }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, up := range h.uppers {
		if v <= up {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

func (h *Histogram) write(w io.Writer) {
	header(w, h.name, h.help, "histogram")
	h.writeSamples(w)
}

// writeSamples renders bucket/sum/count lines, honoring the child's
// label pairs when set.
func (h *Histogram) writeSamples(w io.Writer) {
	cum := int64(0)
	for i, up := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, h.leLabels(fmtFloat(up)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, h.leLabels("+Inf"), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.bareLabels(), fmtFloat(math.Float64frombits(h.sumBits.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.bareLabels(), h.count.Load())
}

func (h *Histogram) leLabels(le string) string {
	return labelString(append(append([]string{}, h.labelNames...), "le"),
		append(append([]string{}, h.labelVals...), le))
}

func (h *Histogram) bareLabels() string {
	if len(h.labelNames) == 0 {
		return ""
	}
	return labelString(h.labelNames, h.labelVals)
}

// --- labeled vectors ---

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]*vecCounter
}

type vecCounter struct {
	vals []string
	v    atomic.Int64
}

// NewCounterVec registers a labeled counter family on reg.
func (r *Registry) NewCounterVec(name, help string, labels []string) *CounterVec {
	return r.register(&CounterVec{name: name, help: help, labels: labels,
		children: map[string]*vecCounter{}}).(*CounterVec)
}

// NewCounterVec registers a labeled counter family on the default registry.
func NewCounterVec(name, help string, labels []string) *CounterVec {
	return std.NewCounterVec(name, help, labels)
}

func (v *CounterVec) metricName() string { return v.name }

func vecKey(vals []string) string { return strings.Join(vals, "\x00") }

// With returns the child counter for the given label values.
func (v *CounterVec) With(vals ...string) *vecCounter {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := vecKey(vals)
	c, ok := v.children[key]
	if !ok {
		c = &vecCounter{vals: append([]string{}, vals...)}
		v.children[key] = c
	}
	return c
}

// Inc adds one.
func (c *vecCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *vecCounter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *vecCounter) Value() int64 { return c.v.Load() }

func (v *CounterVec) write(w io.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*vecCounter, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, c := range kids {
		fmt.Fprintf(w, "%s%s %d\n", v.name, labelString(v.labels, c.vals), c.v.Load())
	}
}

// HistogramVec is a family of fixed-bucket histograms keyed by label
// values.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64
	mu         sync.Mutex
	children   map[string]*Histogram
}

// NewHistogramVec registers a labeled histogram family on reg.
func (r *Registry) NewHistogramVec(name, help string, labels []string, buckets []float64) *HistogramVec {
	return r.register(&HistogramVec{name: name, help: help, labels: labels,
		buckets: buckets, children: map[string]*Histogram{}}).(*HistogramVec)
}

// NewHistogramVec registers a labeled histogram family on the default
// registry.
func NewHistogramVec(name, help string, labels []string, buckets []float64) *HistogramVec {
	return std.NewHistogramVec(name, help, labels, buckets)
}

func (v *HistogramVec) metricName() string { return v.name }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	key := vecKey(vals)
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.name, v.help, v.buckets)
		h.labelNames = v.labels
		h.labelVals = append([]string{}, vals...)
		v.children[key] = h
	}
	return h
}

func (v *HistogramVec) write(w io.Writer) {
	header(w, v.name, v.help, "histogram")
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Histogram, len(keys))
	for i, k := range keys {
		kids[i] = v.children[k]
	}
	v.mu.Unlock()
	for _, h := range kids {
		h.writeSamples(w)
	}
}
