package storage

import (
	"encoding/binary"
	"fmt"

	"securitykg/internal/graph"
)

// Codec selects how WAL record payloads and snapshots are encoded. The
// outer WAL framing (length prefix + CRC) is codec-independent; the
// codec governs the payload bytes and which snapshot format checkpoints
// write. Recovery always sniffs — a binary-default build replays JSON
// data directories and vice versa; the directory converts to the
// configured codec at its next checkpoint (snapshot rewrite + WAL
// truncation), never in place.
type Codec int

const (
	// CodecBinary is the default: varint-packed payloads with an in-band
	// string dictionary, and binary snapshot checkpoints (snapshot.skg).
	CodecBinary Codec = iota
	// CodecJSON is the versioned fallback — the PR-4 format: JSON record
	// payloads and JSONL snapshots, byte-compatible with old data dirs.
	CodecJSON
)

// ParseCodec maps the --codec flag values onto codecs.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "binary", "":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	}
	return 0, fmt.Errorf("storage: unknown codec %q (want binary or json)", s)
}

func (c Codec) String() string {
	if c == CodecJSON {
		return "json"
	}
	return "binary"
}

// walMagic opens a binary-codec log file. Legacy/JSON logs have no file
// header — their first bytes are a record length prefix — so recovery
// distinguishes the formats by this prefix alone.
const walMagic = "skgwal2\n"

// Binary record payload layout (inside the standard length+CRC frame):
//
//	seq    uvarint
//	op     1 byte (opcode table below)
//	fields per op, in order, from:
//	  id      uvarint (node/edge IDs; non-negative by construction)
//	  string  uvarint len + raw bytes (names, attr values)
//	  dictref uvarint: 0 = new string (uvarint len + bytes) that also
//	          appends to the dictionary; n>0 = the n-th string ever
//	          added (types, attr keys — the small repeated vocabulary)
//	  attrs   uvarint count, then count × (dictref key · string val),
//	          sorted by key so identical mutations encode identically
//
// The dictionary is in-band and cumulative over the life of the log
// file: the writer adds a string the first time it appears, the reader
// reconstructs the same table by replaying adds during the scan. A
// truncation resets both sides along with the file, and append errors
// are sticky (nothing further is written), so writer and reader tables
// can never diverge from the bytes actually on disk.

const (
	opMergeNode byte = iota + 1
	opAddEdge
	opSetAttr
	opDeleteNode
	opDeleteEdge
	opMigrateEdges
	// Transaction markers: opcode only, no fields after it. tx_begin /
	// tx_commit bracket a committed multi-mutation transaction; recovery
	// replays a group only once its tx_commit is seen, and a tx_rollback
	// (never written by this code, but accepted) discards the open group.
	opTxBegin
	opTxCommit
	opTxRollback
)

func opcodeOf(op graph.MutationOp) (byte, bool) {
	switch op {
	case graph.OpMergeNode:
		return opMergeNode, true
	case graph.OpAddEdge:
		return opAddEdge, true
	case graph.OpSetAttr:
		return opSetAttr, true
	case graph.OpDeleteNode:
		return opDeleteNode, true
	case graph.OpDeleteEdge:
		return opDeleteEdge, true
	case graph.OpMigrateEdges:
		return opMigrateEdges, true
	case graph.OpTxBegin:
		return opTxBegin, true
	case graph.OpTxCommit:
		return opTxCommit, true
	case graph.OpTxRollback:
		return opTxRollback, true
	}
	return 0, false
}

func mutationOpOf(b byte) (graph.MutationOp, bool) {
	switch b {
	case opMergeNode:
		return graph.OpMergeNode, true
	case opAddEdge:
		return graph.OpAddEdge, true
	case opSetAttr:
		return graph.OpSetAttr, true
	case opDeleteNode:
		return graph.OpDeleteNode, true
	case opDeleteEdge:
		return graph.OpDeleteEdge, true
	case opMigrateEdges:
		return graph.OpMigrateEdges, true
	case opTxBegin:
		return graph.OpTxBegin, true
	case opTxCommit:
		return graph.OpTxCommit, true
	case opTxRollback:
		return graph.OpTxRollback, true
	}
	return "", false
}

// walDict is the encode-side in-band dictionary.
type walDict struct {
	ids map[string]uint64
	n   uint64
}

func newWALDict(seed []string) *walDict {
	d := &walDict{ids: make(map[string]uint64, len(seed)+16)}
	for _, s := range seed {
		d.n++
		d.ids[s] = d.n
	}
	return d
}

// emit appends s as a dictref, registering it when new.
func (d *walDict) emit(buf []byte, s string) []byte {
	if id, ok := d.ids[s]; ok {
		return binary.AppendUvarint(buf, id)
	}
	buf = binary.AppendUvarint(buf, 0)
	buf = appendStr(buf, s)
	d.n++
	d.ids[s] = d.n
	return buf
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// encodeRecordBinary appends rec's binary payload to buf. scratch is a
// reusable key-sorting buffer (returned so the caller can keep it).
func encodeRecordBinary(buf []byte, rec Record, dict *walDict, scratch []string) ([]byte, []string) {
	buf = binary.AppendUvarint(buf, rec.Seq)
	code, _ := opcodeOf(rec.Op)
	buf = append(buf, code)
	emitAttrs := func(buf []byte) []byte {
		buf = binary.AppendUvarint(buf, uint64(len(rec.Attrs)))
		scratch = scratch[:0]
		for k := range rec.Attrs {
			scratch = append(scratch, k)
		}
		sortStrings(scratch)
		for _, k := range scratch {
			buf = dict.emit(buf, k)
			buf = appendStr(buf, rec.Attrs[k])
		}
		return buf
	}
	switch code {
	case opMergeNode:
		buf = dict.emit(buf, rec.Type)
		buf = appendStr(buf, rec.Name)
		buf = emitAttrs(buf)
	case opAddEdge:
		buf = dict.emit(buf, rec.Type)
		buf = binary.AppendUvarint(buf, uint64(rec.From))
		buf = binary.AppendUvarint(buf, uint64(rec.To))
		buf = emitAttrs(buf)
	case opSetAttr:
		buf = binary.AppendUvarint(buf, uint64(rec.Node))
		buf = dict.emit(buf, rec.Key)
		buf = appendStr(buf, rec.Val)
	case opDeleteNode:
		buf = binary.AppendUvarint(buf, uint64(rec.Node))
	case opDeleteEdge:
		buf = binary.AppendUvarint(buf, uint64(rec.Edge))
	case opMigrateEdges:
		buf = binary.AppendUvarint(buf, uint64(rec.From))
		buf = binary.AppendUvarint(buf, uint64(rec.To))
	}
	return buf, scratch
}

// insertion sort: attr maps are tiny and the keys are nearly sorted in
// practice; avoids sort.Strings' interface allocation on the hot path.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// binPayload walks one binary payload during decode.
type binPayload struct {
	p    []byte
	off  int
	dict *[]string
}

func (b *binPayload) uvarint() (uint64, error) {
	v, n := binary.Uvarint(b.p[b.off:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: binary record: bad varint at %d", b.off)
	}
	b.off += n
	return v, nil
}

func (b *binPayload) str() (string, error) {
	n, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(b.p)-b.off) {
		return "", fmt.Errorf("storage: binary record: string length %d past payload end", n)
	}
	s := string(b.p[b.off : b.off+int(n)])
	b.off += int(n)
	return s, nil
}

// dictStr reads a dictref, appending to the dictionary on a new string.
func (b *binPayload) dictStr() (string, error) {
	r, err := b.uvarint()
	if err != nil {
		return "", err
	}
	if r == 0 {
		s, err := b.str()
		if err != nil {
			return "", err
		}
		*b.dict = append(*b.dict, s)
		return s, nil
	}
	if r > uint64(len(*b.dict)) {
		return "", fmt.Errorf("storage: binary record: dict ref %d out of range (%d entries)", r, len(*b.dict))
	}
	return (*b.dict)[r-1], nil
}

func (b *binPayload) id() (int64, error) {
	v, err := b.uvarint()
	if err != nil {
		return 0, err
	}
	if v > 1<<62 {
		return 0, fmt.Errorf("storage: binary record: id %d overflows", v)
	}
	return int64(v), nil
}

// decodeRecordBinary decodes one payload, mutating dict exactly as the
// writer did when encoding it.
func decodeRecordBinary(p []byte, dict *[]string) (Record, error) {
	var rec Record
	err := decodeRecordBinaryInto(p, dict, &rec, nil)
	return rec, err
}

// decodeRecordBinaryInto decodes one payload into *rec, mutating dict
// exactly as the writer did when encoding it. A non-nil scratch map is
// cleared and used for the record's attributes instead of allocating a
// fresh map per record — safe only for callers that fully consume each
// record before decoding the next (the streaming recovery scanner:
// Apply copies attributes, so the reuse never leaks into the store).
func decodeRecordBinaryInto(p []byte, dict *[]string, rec *Record, scratch map[string]string) error {
	b := &binPayload{p: p, dict: dict}
	*rec = Record{}
	seq, err := b.uvarint()
	if err != nil {
		return err
	}
	rec.Seq = seq
	if b.off >= len(p) {
		return fmt.Errorf("storage: binary record: truncated before opcode")
	}
	code := p[b.off]
	b.off++
	op, ok := mutationOpOf(code)
	if !ok {
		return fmt.Errorf("storage: binary record: unknown opcode %d", code)
	}
	rec.Op = op
	readAttrs := func() error {
		n, err := b.uvarint()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		if n > uint64(len(p)) { // each attr costs ≥2 bytes; cheap sanity bound
			return fmt.Errorf("storage: binary record: attr count %d past payload size", n)
		}
		if scratch != nil {
			clear(scratch)
			rec.Attrs = scratch
		} else {
			rec.Attrs = make(map[string]string, n)
		}
		for i := uint64(0); i < n; i++ {
			k, err := b.dictStr()
			if err != nil {
				return err
			}
			v, err := b.str()
			if err != nil {
				return err
			}
			rec.Attrs[k] = v
		}
		return nil
	}
	switch code {
	case opMergeNode:
		if rec.Type, err = b.dictStr(); err != nil {
			return err
		}
		if rec.Name, err = b.str(); err != nil {
			return err
		}
		if err = readAttrs(); err != nil {
			return err
		}
	case opAddEdge:
		if rec.Type, err = b.dictStr(); err != nil {
			return err
		}
		var from, to int64
		if from, err = b.id(); err != nil {
			return err
		}
		if to, err = b.id(); err != nil {
			return err
		}
		rec.From, rec.To = graph.NodeID(from), graph.NodeID(to)
		if err = readAttrs(); err != nil {
			return err
		}
	case opSetAttr:
		var node int64
		if node, err = b.id(); err != nil {
			return err
		}
		rec.Node = graph.NodeID(node)
		if rec.Key, err = b.dictStr(); err != nil {
			return err
		}
		if rec.Val, err = b.str(); err != nil {
			return err
		}
	case opDeleteNode:
		var node int64
		if node, err = b.id(); err != nil {
			return err
		}
		rec.Node = graph.NodeID(node)
	case opDeleteEdge:
		var edge int64
		if edge, err = b.id(); err != nil {
			return err
		}
		rec.Edge = graph.EdgeID(edge)
	case opMigrateEdges:
		var from, to int64
		if from, err = b.id(); err != nil {
			return err
		}
		if to, err = b.id(); err != nil {
			return err
		}
		rec.From, rec.To = graph.NodeID(from), graph.NodeID(to)
	}
	if b.off != len(p) {
		return fmt.Errorf("storage: binary record: %d trailing bytes", len(p)-b.off)
	}
	return nil
}
