package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"securitykg/internal/graph"
)

// TestCrashProcessKill is the real-process half of the crash-recovery
// property (`make crash-test` runs it repeatedly): a child process —
// this test binary re-exec'd in writer mode — applies the deterministic
// mutation stream of a random seed to a durable store as fast as it
// can, the parent SIGKILLs it at a random moment (so the WAL is cut at
// an arbitrary byte offset, possibly mid-record), and recovery must
// produce exactly the state reached by some prefix of that stream:
// the recovered LastSeq names the prefix, and replaying that many
// effective mutations through a fresh in-memory store must match the
// recovered store's Save output byte for byte.
func TestCrashProcessKill(t *testing.T) {
	if dir := os.Getenv("SKG_CRASH_CHILD_DIR"); dir != "" {
		crashChild(t, dir)
		return
	}
	if testing.Short() {
		t.Skip("process-kill crash test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	rounds := 3
	for round := 0; round < rounds; round++ {
		seed := rng.Int63()
		dir := t.TempDir()
		cmd := exec.Command(exe, "-test.run", "^TestCrashProcessKill$", "-test.v")
		cmd.Env = append(os.Environ(),
			"SKG_CRASH_CHILD_DIR="+dir,
			"SKG_CRASH_CHILD_SEED="+strconv.FormatInt(seed, 10))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let the child get some writes out, then kill it mid-flight.
		time.Sleep(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		db, err := Open(dir, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("round %d (seed %d): recovery failed: %v", round, seed, err)
		}
		k := db.LastSeq()
		got := saveBytes(t, db.Store())
		db.Close()

		// Independently refold the first k effective mutations of the
		// child's deterministic stream.
		ref := graph.New()
		var applied uint64
		ref.SetMutationHook(func(graph.Mutation) { applied++ })
		g := newMutGen(seed)
		for applied < k {
			g.step(ref)
		}
		if applied != k {
			t.Fatalf("round %d (seed %d): generator stepped past seq %d (at %d)", round, seed, k, applied)
		}
		ref.SetMutationHook(nil)
		if want := saveBytes(t, ref); !bytes.Equal(got, want) {
			t.Fatalf("round %d (seed %d): recovered store (seq %d) is not the %d-mutation prefix fold",
				round, seed, k, k)
		}
		t.Logf("round %d: killed at seq %d, recovery byte-identical", round, k)
	}
}

// crashChild is the writer the parent kills: it opens the data
// directory and applies the seed's mutation stream until murdered.
func crashChild(t *testing.T, dir string) {
	seed, err := strconv.ParseInt(os.Getenv("SKG_CRASH_CHILD_SEED"), 10, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: bad seed:", err)
		os.Exit(2)
	}
	db, err := Open(dir, Options{Sync: SyncNever, CompactBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: open:", err)
		os.Exit(2)
	}
	g := newMutGen(seed)
	for {
		g.step(db.Store())
	}
}
