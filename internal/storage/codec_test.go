package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"securitykg/internal/graph"
)

// writeWALFile frames recs into a single continuous log file in the
// given codec (one dictionary stream), as a real appender would have.
func writeWALFile(t *testing.T, path string, recs []Record, codec Codec) {
	t.Helper()
	var buf bytes.Buffer
	dict := newWALDict(nil)
	if codec == CodecBinary {
		buf.WriteString(walMagic)
	}
	var enc []byte
	var keys []string
	for _, rec := range recs {
		var payload []byte
		if codec == CodecBinary {
			enc, keys = encodeRecordBinary(enc[:0], rec, dict, keys)
			payload = enc
		} else {
			var err error
			if payload, err = json.Marshal(rec); err != nil {
				t.Fatal(err)
			}
		}
		var hdr [recordHeaderLen]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordCodecRoundTrip: every record shape survives the binary
// codec bit-exactly, including dictionary reuse across records.
func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: graph.OpMergeNode, Type: "Malware", Name: "emotet",
			Attrs: map[string]string{"family": "trojan", "cve": "CVE-1", "": "empty-key"}},
		{Seq: 2, Op: graph.OpMergeNode, Type: "Malware", Name: "", Attrs: nil},
		{Seq: 3, Op: graph.OpAddEdge, Type: "connects_to", From: 1, To: 2,
			Attrs: map[string]string{"port": "443"}},
		{Seq: 4, Op: graph.OpSetAttr, Node: 2, Key: "cve", Val: "CVE-2"},
		{Seq: 5, Op: graph.OpSetAttr, Node: 2, Key: "", Val: ""},
		{Seq: 6, Op: graph.OpDeleteEdge, Edge: 1},
		{Seq: 7, Op: graph.OpMigrateEdges, From: 2, To: 1},
		{Seq: 8, Op: graph.OpDeleteNode, Node: 1},
	}
	encDict := newWALDict(nil)
	var decDict []string
	var buf []byte
	var keys []string
	for _, want := range recs {
		buf, keys = encodeRecordBinary(buf[:0], want, encDict, keys)
		got, err := decodeRecordBinary(buf, &decDict)
		if err != nil {
			t.Fatalf("seq %d: decode: %v", want.Seq, err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Fatalf("seq %d: round trip changed record:\nwant %s\ngot  %s", want.Seq, wj, gj)
		}
	}
	// Re-encoding the same vocabulary must now be pure dictionary refs:
	// the second MergeNode-style record is smaller than the first.
	d2 := newWALDict(nil)
	first, _ := encodeRecordBinary(nil, recs[0], d2, nil)
	second, _ := encodeRecordBinary(nil, recs[0], d2, nil)
	if len(second) >= len(first) {
		t.Fatalf("dictionary reuse did not shrink a repeated record: %d then %d bytes", len(first), len(second))
	}
}

// buildDataDir creates a data directory in the given codec containing a
// snapshot (mid-stream checkpoint) plus a WAL tail, and returns the
// canonical Save bytes of the final store.
func buildDataDir(t *testing.T, dir string, codec Codec, seed int64) []byte {
	t.Helper()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: codec})
	g := newMutGen(seed)
	for i := 0; i < 120; i++ {
		g.step(db.Store())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 0; i < 60; i++ {
		g.step(db.Store())
	}
	want := saveBytes(t, db.Store())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// TestCrossCodecMatrix is the forward/backward-compat matrix: a data
// directory written entirely in either codec must be recovered
// byte-identically by a build configured for either codec, and the
// directory must convert to the configured codec at its next
// checkpoint — snapshot file renamed over, WAL restarted in the new
// format — without losing a mutation.
func TestCrossCodecMatrix(t *testing.T) {
	for _, dirCodec := range []Codec{CodecJSON, CodecBinary} {
		for _, openCodec := range []Codec{CodecJSON, CodecBinary} {
			t.Run(dirCodec.String()+"-dir/"+openCodec.String()+"-build", func(t *testing.T) {
				dir := t.TempDir()
				want := buildDataDir(t, dir, dirCodec, 11)

				db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: openCodec})
				if got := saveBytes(t, db.Store()); !bytes.Equal(got, want) {
					t.Fatalf("%v dir recovered by %v build differs", dirCodec, openCodec)
				}
				if db.Recovered.SnapshotSeq == 0 || db.Recovered.Replayed == 0 {
					t.Fatalf("recovery skipped snapshot or tail: %+v", db.Recovered)
				}
				// The next checkpoint converts the directory.
				db.Store().MergeNode("Converted", "marker", nil)
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("converting checkpoint: %v", err)
				}
				db.Store().MergeNode("Converted", "post-checkpoint", nil)
				want2 := saveBytes(t, db.Store())
				if err := db.Close(); err != nil {
					t.Fatal(err)
				}

				wantSnap, otherSnap := snapshotBinFile, snapshotFile
				if openCodec == CodecJSON {
					wantSnap, otherSnap = snapshotFile, snapshotBinFile
				}
				if _, err := os.Stat(filepath.Join(dir, wantSnap)); err != nil {
					t.Fatalf("converted snapshot %s missing: %v", wantSnap, err)
				}
				if _, err := os.Stat(filepath.Join(dir, otherSnap)); !os.IsNotExist(err) {
					t.Fatalf("stale snapshot %s still present (err=%v)", otherSnap, err)
				}
				walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
				if err != nil {
					t.Fatal(err)
				}
				isBin := bytes.HasPrefix(walBytes, []byte(walMagic))
				if isBin != (openCodec == CodecBinary) {
					t.Fatalf("post-conversion WAL codec: binary=%v, want %v", isBin, openCodec == CodecBinary)
				}

				db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: openCodec})
				defer db2.Close()
				if got := saveBytes(t, db2.Store()); !bytes.Equal(got, want2) {
					t.Fatal("converted directory lost state across reopen")
				}
			})
		}
	}
}

// TestBothSnapshotsPresent: a crash between a checkpoint's rename and
// its removal of the other codec's file leaves both snapshots; recovery
// must pick the higher covering seq.
func TestBothSnapshotsPresent(t *testing.T) {
	dir := t.TempDir()
	// Older JSON snapshot at a lower seq.
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: CodecJSON})
	g := newMutGen(13)
	for i := 0; i < 50; i++ {
		g.step(db.Store())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	oldJSON, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	// Newer binary snapshot at a higher seq (its checkpoint removed the
	// JSON file; put the stale one back to simulate the crash window).
	db = openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: CodecBinary})
	for i := 0; i < 50; i++ {
		g.step(db.Store())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, db.Store())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), oldJSON, 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	defer db2.Close()
	if got := saveBytes(t, db2.Store()); !bytes.Equal(got, want) {
		t.Fatal("recovery with both snapshots present did not pick the newer one")
	}
}

// TestBinaryWALTornDictionary: a binary log cut mid-record must recover
// to the surviving prefix with a consistent dictionary — in particular,
// appends after recovery (which reseed the dictionary from the scan)
// must produce records the next recovery decodes correctly.
func TestBinaryWALTornDictionary(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	// Vocabulary-heavy stream so dictionary refs dominate.
	for i := 0; i < 30; i++ {
		id, _ := db.Store().MergeNode("Malware", "m"+string(rune('a'+i%26)), map[string]string{"family": "trojan"})
		db.Store().SetAttr(id, "score", "9")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walFile)
	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-file: the tail record (and its dictionary additions) die.
	if err := os.WriteFile(walPath, walBytes[:2*len(walBytes)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	// These appends must reuse surviving dictionary ids, not collide.
	id, _ := db2.Store().MergeNode("Malware", "fresh-after-tear", map[string]string{"family": "worm"})
	db2.Store().SetAttr(id, "score", "1")
	want := saveBytes(t, db2.Store())
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	defer db3.Close()
	if got := saveBytes(t, db3.Store()); !bytes.Equal(got, want) {
		t.Fatal("post-tear appends did not survive recovery (dictionary desync?)")
	}
	n := db3.Store().FindNode("Malware", "fresh-after-tear")
	if n == nil || n.Attrs["family"] != "worm" {
		t.Fatalf("post-tear node wrong: %+v", n)
	}
}
