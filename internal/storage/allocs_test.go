//go:build !race

// Allocation regression guards. AllocsPerRun numbers are meaningless
// under the race detector (it instruments allocations), so these run in
// the plain-build test pass `make test` adds alongside the -race suite.

package storage

import (
	"path/filepath"
	"testing"

	"securitykg/internal/graph"
)

// TestWALAppendAllocs locks down the binary append hot path: with the
// dictionary warm and the scratch buffers grown, framing and encoding a
// record must not allocate (the record's own payload bytes travel
// through reused buffers straight into the bufio writer).
func TestWALAppendAllocs(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(filepath.Join(dir, walFile), 0, 0, CodecBinary, nil, CodecBinary, SyncNever, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	mut := graph.Mutation{Op: graph.OpSetAttr, Node: 7, Key: "score", Val: "9"}
	// Warm: register the dictionary entries and grow the scratch buffers.
	for i := 0; i < 4; i++ {
		if _, err := w.Append(mut); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := w.Append(mut); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("binary WAL append allocates %.1f/op warm, want 0", allocs)
	}

	// Attr-carrying records may allocate for map iteration scratch but
	// must stay bounded — a regression to per-append JSON-style encoding
	// shows up as dozens of allocations.
	mutAttrs := graph.Mutation{Op: graph.OpMergeNode, Type: "Malware", Name: "m",
		Attrs: map[string]string{"seen": "1", "family": "trojan"}}
	for i := 0; i < 4; i++ {
		if _, err := w.Append(mutAttrs); err != nil {
			t.Fatal(err)
		}
	}
	allocs = testing.AllocsPerRun(200, func() {
		if _, err := w.Append(mutAttrs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("binary WAL append with attrs allocates %.1f/op warm, want <= 2", allocs)
	}
}
