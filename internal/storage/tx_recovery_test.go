package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"securitykg/internal/graph"
)

// This file extends the crash-recovery harness (storage_test.go,
// crash_test.go) to transactional logs: WALs whose records mix bare
// mutations, committed multi-mutation groups, and — at arbitrary cut
// points — groups whose commit record never landed. The recovery
// contract under test: the recovered store is byte-identical to the
// fold of exactly the committed prefix, dangling groups are discarded
// like torn records, and the directory stays writable afterwards.

// txMutGen layers transaction structure over mutGen's deterministic
// operation stream: a batch is either one bare mutation or a store
// transaction of several steps, committed (one atomic WAL group) or
// rolled back (nothing logged). Same seed, same stream, on any store.
type txMutGen struct {
	g *mutGen
}

func newTxMutGen(seed int64) *txMutGen { return &txMutGen{g: newMutGen(seed)} }

// batch applies one atomic unit to st. On rollback the generator's
// id-tracking state is restored too, so later batches never reference
// entities that were undone.
func (tg *txMutGen) batch(st *graph.Store) {
	r := tg.g.rng.Intn(100)
	if r < 40 {
		tg.g.step(st)
		return
	}
	rollback := r >= 90
	savedN := append([]graph.NodeID(nil), tg.g.nodes...)
	savedE := append([]graph.EdgeID(nil), tg.g.edges...)
	tx := st.BeginTx()
	n := 2 + tg.g.rng.Intn(4)
	for i := 0; i < n; i++ {
		tg.g.step(tx)
	}
	if rollback {
		tx.Rollback()
		tg.g.nodes, tg.g.edges = savedN, savedE
		return
	}
	tx.Commit()
}

// committedFold is the test's independent reimplementation of
// transactional replay: bare records apply directly, a group's records
// buffer and apply only when its commit record follows, and anything
// else is dropped. Returns the folded store plus how many records were
// discarded, mirroring RecoveryInfo.TxDiscarded.
func committedFold(t *testing.T, recs []Record) (*graph.Store, int) {
	t.Helper()
	st := graph.New()
	inTx := false
	var pending []graph.Mutation
	discarded := 0
	apply := func(m graph.Mutation) {
		if err := st.Apply(m); err != nil {
			t.Fatalf("oracle apply %v: %v", m.Op, err)
		}
	}
	for _, rec := range recs {
		switch rec.Op {
		case graph.OpTxBegin:
			if inTx {
				discarded += len(pending) + 1
			}
			pending, inTx = pending[:0], true
		case graph.OpTxCommit:
			if inTx {
				for _, m := range pending {
					apply(m)
				}
				pending, inTx = pending[:0], false
			}
		case graph.OpTxRollback:
			if inTx {
				discarded += len(pending) + 2
				pending, inTx = pending[:0], false
			}
		default:
			if inTx {
				pending = append(pending, rec.Mutation())
			} else {
				apply(rec.Mutation())
			}
		}
	}
	if inTx {
		discarded += len(pending) + 1
	}
	return st, discarded
}

// TestTornTailEveryOffsetTx is TestTornTailEveryOffset for a
// transactional log: cut the WAL at every byte offset — including mid
// group, where a crash between a commit's flush frames would land —
// and recovery must produce exactly the committed-prefix fold, report
// the discarded group, and leave the directory writable. Both codecs.
func TestTornTailEveryOffsetTx(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		t.Run(codec.String(), func(t *testing.T) { testTornTailEveryOffsetTx(t, codec) })
	}
}

func testTornTailEveryOffsetTx(t *testing.T, codec Codec) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: codec})
	tg := newTxMutGen(3)
	for i := 0; i < 30; i++ {
		tg.batch(db.Store())
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	full := scanWAL(bytes.NewReader(walBytes))
	if full.torn || len(full.records) == 0 {
		t.Fatalf("clean log scans torn=%v records=%d", full.torn, len(full.records))
	}
	groups := 0
	for _, rec := range full.records {
		if rec.Op == graph.OpTxBegin {
			groups++
		}
	}
	if groups < 2 {
		t.Fatalf("seed built only %d transaction groups — log does not exercise the fold", groups)
	}

	step := 1
	if testing.Short() {
		step = 13
	}
	for cut := 0; cut <= len(walBytes); cut += step {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walFile), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(sub, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		pre := scanWAL(bytes.NewReader(walBytes[:cut]))
		want, wantDiscarded := committedFold(t, pre.records)
		if got := saveBytes(t, rdb.Store()); !bytes.Equal(got, saveBytes(t, want)) {
			t.Fatalf("cut=%d: recovered store is not the committed-prefix fold", cut)
		}
		if rdb.Recovered.TxDiscarded != wantDiscarded {
			t.Fatalf("cut=%d: TxDiscarded=%d want %d", cut, rdb.Recovered.TxDiscarded, wantDiscarded)
		}
		if wantDiscarded > 0 && !rdb.Recovered.TornTail {
			t.Fatalf("cut=%d: dangling group was not reported as a torn tail", cut)
		}
		// The truncated directory must accept new writes cleanly.
		rdb.Store().MergeNode("Post", "recovery", nil)
		if err := rdb.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		rdb2, err := Open(sub, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("cut=%d: reopen after post-recovery write: %v", cut, err)
		}
		if rdb2.Store().FindNode("Post", "recovery") == nil {
			t.Fatalf("cut=%d: post-recovery write lost", cut)
		}
		rdb2.Close()
	}
}

// TestCrashProcessKillTx is TestCrashProcessKill with a transactional
// writer: the re-exec'd child applies the seed's batch stream —
// committed groups, rollbacks, bare mutations — until SIGKILLed, and
// recovery must land exactly on a batch boundary: the recovered state
// equals the prefix of the stream that emitted LastSeq WAL records
// (wrapper records included), replayed through a fresh in-memory store.
func TestCrashProcessKillTx(t *testing.T) {
	if dir := os.Getenv("SKG_CRASH_TX_DIR"); dir != "" {
		crashTxChild(t, dir)
		return
	}
	if testing.Short() {
		t.Skip("process-kill crash test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < 3; round++ {
		seed := rng.Int63()
		dir := t.TempDir()
		cmd := exec.Command(exe, "-test.run", "^TestCrashProcessKillTx$", "-test.v")
		cmd.Env = append(os.Environ(),
			"SKG_CRASH_TX_DIR="+dir,
			"SKG_CRASH_CHILD_SEED="+strconv.FormatInt(seed, 10))
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(20+rng.Intn(120)) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		db, err := Open(dir, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("round %d (seed %d): recovery failed: %v", round, seed, err)
		}
		if db.Recovered.TxDiscarded > 0 && !db.Recovered.TornTail {
			t.Fatalf("round %d (seed %d): discarded a group without reporting a torn tail", round, seed)
		}
		k := db.LastSeq()
		got := saveBytes(t, db.Store())
		db.Close()

		// Oracle: replay the same deterministic batch stream on a bare
		// in-memory store, counting emitted records (the mutation hook
		// fires once per WAL record, tx_begin/tx_commit included).
		// Recovery discards dangling groups, so k must land exactly on a
		// batch boundary — stepping past it means recovery kept a partial
		// group.
		ref := graph.New()
		var emitted uint64
		ref.SetMutationHook(func(graph.Mutation) { emitted++ })
		tg := newTxMutGen(seed)
		for emitted < k {
			tg.batch(ref)
		}
		ref.SetMutationHook(nil)
		if emitted != k {
			t.Fatalf("round %d (seed %d): batch stream stepped past seq %d (at %d) — recovery cut inside a group?",
				round, seed, k, emitted)
		}
		if want := saveBytes(t, ref); !bytes.Equal(got, want) {
			t.Fatalf("round %d (seed %d): recovered store (seq %d) is not the committed batch-prefix fold",
				round, seed, k)
		}
		t.Logf("round %d: killed at seq %d (%d tx records discarded), recovery byte-identical",
			round, k, db.Recovered.TxDiscarded)
	}
}

// crashTxChild is the transactional writer the parent kills.
func crashTxChild(t *testing.T, dir string) {
	seed, err := strconv.ParseInt(os.Getenv("SKG_CRASH_CHILD_SEED"), 10, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: bad seed:", err)
		os.Exit(2)
	}
	db, err := Open(dir, Options{Sync: SyncNever, CompactBytes: -1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child: open:", err)
		os.Exit(2)
	}
	tg := newTxMutGen(seed)
	for {
		tg.batch(db.Store())
	}
}
