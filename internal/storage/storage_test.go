package storage

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"securitykg/internal/graph"
)

// mutGen deterministically generates a stream of store operations that
// exercises every WAL record type. Applying the same seed's stream to
// any store yields the same state, which is what the crash tests lean
// on: the surviving log prefix must equal a prefix of this stream.
type mutGen struct {
	rng   *rand.Rand
	nodes []graph.NodeID
	edges []graph.EdgeID
}

func newMutGen(seed int64) *mutGen { return &mutGen{rng: rand.New(rand.NewSource(seed))} }

var genTypes = []string{"Malware", "IP", "Tool", "ThreatActor"}
var genEdgeTypes = []string{"CONNECT", "USE", "DROP"}

// mutStore is the surface step drives: the bare store or an open
// transaction — the generator's streams work identically through both.
type mutStore interface {
	MergeNode(typ, name string, attrs map[string]string) (graph.NodeID, bool)
	AddEdge(from graph.NodeID, typ string, to graph.NodeID, attrs map[string]string) (graph.EdgeID, bool, error)
	SetAttr(id graph.NodeID, key, val string) error
	DeleteNode(id graph.NodeID) error
	DeleteEdge(id graph.EdgeID) error
	MigrateEdges(from, to graph.NodeID) error
}

// step applies one random operation to st. Operations are chosen so the
// store keeps growing (deletes are rarer than creates) and so every
// mutation op appears.
func (g *mutGen) step(st mutStore) {
	r := g.rng.Intn(100)
	switch {
	case r < 45 || len(g.nodes) < 2:
		typ := genTypes[g.rng.Intn(len(genTypes))]
		name := typ + "-" + string(rune('a'+g.rng.Intn(26))) + string(rune('a'+g.rng.Intn(26)))
		var attrs map[string]string
		if g.rng.Intn(2) == 0 {
			attrs = map[string]string{"seen": string(rune('0' + g.rng.Intn(10)))}
		}
		id, created := st.MergeNode(typ, name, attrs)
		if created {
			g.nodes = append(g.nodes, id)
		}
	case r < 75:
		from := g.nodes[g.rng.Intn(len(g.nodes))]
		to := g.nodes[g.rng.Intn(len(g.nodes))]
		et := genEdgeTypes[g.rng.Intn(len(genEdgeTypes))]
		if id, created, err := st.AddEdge(from, et, to, nil); err == nil && created {
			g.edges = append(g.edges, id)
		}
	case r < 85:
		id := g.nodes[g.rng.Intn(len(g.nodes))]
		st.SetAttr(id, "score", string(rune('0'+g.rng.Intn(10))))
	case r < 90 && len(g.edges) > 0:
		i := g.rng.Intn(len(g.edges))
		st.DeleteEdge(g.edges[i])
		g.edges = append(g.edges[:i], g.edges[i+1:]...)
	case r < 95 && len(g.nodes) > 4:
		i := g.rng.Intn(len(g.nodes))
		st.DeleteNode(g.nodes[i])
		g.nodes = append(g.nodes[:i], g.nodes[i+1:]...)
	case len(g.nodes) > 2:
		st.MigrateEdges(g.nodes[g.rng.Intn(len(g.nodes))], g.nodes[g.rng.Intn(len(g.nodes))])
	}
}

func saveBytes(t *testing.T, st *graph.Store) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := st.Save(&b); err != nil {
		t.Fatalf("save: %v", err)
	}
	return b.Bytes()
}

func openT(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return db
}

// TestDurableRoundTrip: mutations applied to an open DB survive a
// close/reopen cycle exactly, via WAL replay alone (no checkpoint).
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	g := newMutGen(1)
	for i := 0; i < 500; i++ {
		g.step(db.Store())
	}
	want := saveBytes(t, db.Store())
	wantSeq := db.LastSeq()
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	defer db2.Close()
	if got := saveBytes(t, db2.Store()); !bytes.Equal(got, want) {
		t.Fatalf("recovered store differs from pre-close store")
	}
	if db2.Recovered.Replayed == 0 || db2.LastSeq() != wantSeq {
		t.Fatalf("recovery info: %+v lastSeq=%d want %d", db2.Recovered, db2.LastSeq(), wantSeq)
	}
	if db2.Recovered.TornTail {
		t.Fatalf("clean close reported a torn tail")
	}
}

// TestTornTailEveryOffset is the kill-at-any-byte-offset property: for a
// WAL truncated at every possible byte offset, recovery must yield
// exactly the fold of the record prefix that fully survived — compared
// byte-for-byte via Save — and must leave the directory writable. Runs
// against both codecs.
func TestTornTailEveryOffset(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		t.Run(codec.String(), func(t *testing.T) { testTornTailEveryOffset(t, codec) })
	}
}

func testTornTailEveryOffset(t *testing.T, codec Codec) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: codec})
	g := newMutGen(2)
	for i := 0; i < 40; i++ {
		g.step(db.Store())
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries, from a clean scan.
	full := scanWAL(bytes.NewReader(walBytes))
	if full.torn || len(full.records) == 0 {
		t.Fatalf("clean log scans torn=%v records=%d", full.torn, len(full.records))
	}

	// Expected Save bytes after each record prefix (prefixSave[k] = fold
	// of the first k records into a fresh store). Record boundaries start
	// after the codec file header, if any.
	var hdrLen int64
	if bytes.HasPrefix(walBytes, []byte(walMagic)) {
		hdrLen = int64(len(walMagic))
	}
	prefixSave := make([][]byte, len(full.records)+1)
	ref := graph.New()
	prefixSave[0] = saveBytes(t, ref)
	bounds := make([]int64, len(full.records)+1)
	bounds[0] = hdrLen
	for i, rec := range full.records {
		if err := ref.Apply(rec.Mutation()); err != nil {
			t.Fatalf("apply record %d: %v", i, err)
		}
		prefixSave[i+1] = saveBytes(t, ref)
		bounds[i+1] = bounds[i] + int64(recordHeaderLen+recordPayloadLen(t, walBytes, bounds[i]))
	}

	// Every offset is ~3k recoveries; cover all record boundaries plus a
	// stride over intra-record offsets under -short.
	step := 1
	if testing.Short() {
		step = 11
	}
	for cut := 0; cut <= len(walBytes); cut += step {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walFile), walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(sub, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		// How many records fully fit in the first cut bytes?
		k := 0
		for k < len(full.records) && bounds[k+1] <= int64(cut) {
			k++
		}
		if got := saveBytes(t, rdb.Store()); !bytes.Equal(got, prefixSave[k]) {
			t.Fatalf("cut=%d: recovered store is not the %d-record prefix fold", cut, k)
		}
		// The truncated directory must accept new writes cleanly.
		rdb.Store().MergeNode("Post", "recovery", nil)
		if err := rdb.Close(); err != nil {
			t.Fatalf("cut=%d: close: %v", cut, err)
		}
		rdb2, err := Open(sub, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			t.Fatalf("cut=%d: reopen after post-recovery write: %v", cut, err)
		}
		if rdb2.Store().FindNode("Post", "recovery") == nil {
			t.Fatalf("cut=%d: post-recovery write lost", cut)
		}
		rdb2.Close()
	}
}

// recordPayloadLen reads the length prefix of the record starting at off.
func recordPayloadLen(t *testing.T, wal []byte, off int64) int {
	t.Helper()
	if off+recordHeaderLen > int64(len(wal)) {
		t.Fatalf("record header out of range at %d", off)
	}
	return int(uint32(wal[off]) | uint32(wal[off+1])<<8 | uint32(wal[off+2])<<16 | uint32(wal[off+3])<<24)
}

// TestCheckpoint: a checkpoint truncates the WAL, recovery prefers the
// snapshot, and records already covered by the snapshot are skipped if
// a crash leaves them in the log (the rename-before-truncate window).
func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	g := newMutGen(3)
	for i := 0; i < 200; i++ {
		g.step(db.Store())
	}
	preWal, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if db.WALSize() != db.wal.fileHdrLen() {
		t.Fatalf("WAL not truncated after checkpoint: %d bytes", db.WALSize())
	}
	for i := 0; i < 50; i++ {
		g.step(db.Store())
	}
	want := saveBytes(t, db.Store())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	if db2.Recovered.SnapshotSeq == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", db2.Recovered)
	}
	if got := saveBytes(t, db2.Store()); !bytes.Equal(got, want) {
		t.Fatalf("checkpoint+tail recovery differs")
	}
	db2.Close()

	// Crash window: snapshot renamed but WAL never truncated. In that
	// world the log is one continuous file (one dictionary), so rebuild
	// it by re-encoding pre-checkpoint records followed by the tail's —
	// raw byte gluing would splice two dictionary streams together.
	tail, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	pre := scanWAL(bytes.NewReader(preWal))
	post := scanWAL(bytes.NewReader(tail))
	if pre.torn || post.torn {
		t.Fatalf("clean logs scan torn: pre=%v post=%v", pre.torn, post.torn)
	}
	writeWALFile(t, filepath.Join(dir, walFile), append(pre.records, post.records...), pre.codec)
	db3 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	if got := saveBytes(t, db3.Store()); !bytes.Equal(got, want) {
		t.Fatalf("recovery with untruncated WAL differs (snapshot-covered records re-applied?)")
	}
	db3.Close()
}

// TestCompactionTrigger: the WAL self-compacts once it crosses the
// configured threshold.
func TestCompactionTrigger(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: 4096})
	g := newMutGen(4)
	deadline := time.Now().Add(5 * time.Second)
	compacted := false
	for time.Now().Before(deadline) {
		for i := 0; i < 50; i++ {
			g.step(db.Store())
		}
		if _, err := os.Stat(filepath.Join(dir, snapshotBinFile)); err == nil {
			compacted = true
			break
		}
		if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err == nil {
			compacted = true
			break
		}
	}
	if !compacted {
		t.Fatalf("no snapshot appeared after sustained writes past the threshold")
	}
	want := saveBytes(t, db.Store())
	if err := db.Err(); err != nil {
		t.Fatalf("durability error: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	defer db2.Close()
	if got := saveBytes(t, db2.Store()); !bytes.Equal(got, want) {
		t.Fatalf("post-compaction recovery differs")
	}
}

// TestSyncPolicies: the flag parser and the always/interval paths.
func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"", SyncInterval, false},
		{"never", SyncNever, false},
		{"sometimes", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err || (err == nil && got != tc.want) {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval} {
		dir := t.TempDir()
		db := openT(t, dir, Options{Sync: pol, SyncEvery: 5 * time.Millisecond, CompactBytes: -1})
		db.Store().MergeNode("A", "x", nil)
		if err := db.Sync(); err != nil {
			t.Fatalf("%v: sync: %v", pol, err)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("%v: close: %v", pol, err)
		}
		db2 := openT(t, dir, Options{CompactBytes: -1})
		if db2.Store().FindNode("A", "x") == nil {
			t.Fatalf("%v: write lost", pol)
		}
		db2.Close()
	}
}

// TestOpenRejectsForeignSnapshot: a non-snapshot file fails loudly.
func TestOpenRejectsForeignSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("{\"magic\":\"nope\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a foreign snapshot")
	}
}

// TestOversizeRecordRejected: a mutation whose record would exceed the
// reader's size bound is refused at append time (never acknowledged
// into a log that recovery would have to discard), the error is sticky
// and visible, and a checkpoint re-bases durability past the gap —
// clearing the error and preserving every mutation across reopen.
func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	db.Store().MergeNode("A", "before", nil)
	huge := make([]byte, maxRecordLen+1024)
	for i := range huge {
		huge[i] = 'x'
	}
	db.Store().MergeNode("A", "oversize", map[string]string{"blob": string(huge)})
	if db.Err() == nil {
		t.Fatal("oversize record was accepted without error")
	}
	db.Store().MergeNode("A", "after", nil) // store runs ahead of the log
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("re-basing checkpoint: %v", err)
	}
	if err := db.Err(); err != nil {
		t.Fatalf("sticky error survived a covering checkpoint: %v", err)
	}
	db.Store().MergeNode("A", "resumed", nil) // appends work again
	if err := db.Err(); err != nil {
		t.Fatalf("append after re-base: %v", err)
	}
	want := saveBytes(t, db.Store())
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	defer db2.Close()
	if got := saveBytes(t, db2.Store()); !bytes.Equal(got, want) {
		t.Fatal("state lost across the oversize-record gap")
	}
	for _, name := range []string{"before", "oversize", "after", "resumed"} {
		if db2.Store().FindNode("A", name) == nil {
			t.Fatalf("node %q lost", name)
		}
	}
}

// TestSingleOwnerLock: a data directory can only be opened by one
// process/handle at a time; Close releases the lock.
func TestSingleOwnerLock(t *testing.T) {
	dir := t.TempDir()
	db := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	if _, err := Open(dir, Options{Sync: SyncNever, CompactBytes: -1}); err == nil {
		t.Fatal("second Open on a held data directory succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openT(t, dir, Options{Sync: SyncNever, CompactBytes: -1})
	db2.Close()
}
