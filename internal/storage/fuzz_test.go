package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"securitykg/internal/graph"
)

// FuzzWALReplay feeds arbitrary (and mutated-valid) bytes to WAL
// recovery. Invariants: the scanner/replayer never panics, never
// allocates absurdly (the length-prefix bound), and always yields a
// usable store — corruption costs at most the records at and after the
// damage, never a crash. The same bytes are also recovered through the
// full directory path (Open), which must additionally leave the
// directory writable.
func FuzzWALReplay(f *testing.F) {
	// Seed with genuine logs in both codecs covering every record type,
	// including transaction groups (tx_begin/mutations/tx_commit), whose
	// replay buffers records until the commit lands...
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		for name, write := range map[string]func(db *DB){
			"bare": func(db *DB) {
				g := newMutGen(7)
				for i := 0; i < 30; i++ {
					g.step(db.Store())
				}
			},
			"tx": func(db *DB) {
				tg := newTxMutGen(11)
				for i := 0; i < 20; i++ {
					tg.batch(db.Store())
				}
			},
		} {
			dir := f.TempDir()
			db, err := Open(dir, Options{Sync: SyncNever, CompactBytes: -1, Codec: codec})
			if err != nil {
				f.Fatalf("%s/%s: %v", codec, name, err)
			}
			write(db)
			db.Close()
			walBytes, err := os.ReadFile(filepath.Join(dir, walFile))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(walBytes)
			// ...plus truncations and bit flips the fuzzer can extend. The
			// mid-log truncation of the tx seed lands inside a group, the
			// exact shape the committed-prefix fold must discard.
			f.Add(walBytes[:len(walBytes)/2])
			f.Add(walBytes[1:])
			flipped := append([]byte{}, walBytes...)
			flipped[len(flipped)/3] ^= 0x40
			f.Add(flipped)
		}
	}
	// Degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte(walMagic))                           // bare binary header, zero records
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // huge length prefix
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := graph.New()
		if _, _, err := ReplayReader(bytes.NewReader(data), st, 0); err == nil {
			// A clean replay must leave a store whose Save round-trips.
			var b bytes.Buffer
			if err := st.Save(&b); err != nil {
				t.Fatalf("Save after replay: %v", err)
			}
			if _, err := graph.Load(&b); err != nil {
				t.Fatalf("replayed store does not round-trip: %v", err)
			}
		}

		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, walFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := Open(sub, Options{Sync: SyncNever, CompactBytes: -1})
		if err != nil {
			return // structurally-valid records can still be unreplayable
		}
		rdb.Store().MergeNode("Fuzz", "post", nil)
		if err := rdb.Close(); err != nil {
			t.Fatalf("close after fuzzed recovery: %v", err)
		}
	})
}
