package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"securitykg/internal/graph"
)

// DB is a durable graph store: an in-memory graph.Store whose every
// effective mutation is teed into a write-ahead log, plus snapshot
// checkpoints that bound recovery time and log growth. Layout of a data
// directory (one snapshot file exists at a time, named by codec):
//
//	snapshot.skg     binary snapshot: 8-byte magic, uvarint covering
//	                 seq, then the graph's binary codec stream
//	                 (the default)
//	snapshot.jsonl   JSON snapshot: one header line {magic, seq}, then
//	                 the graph's stable Save stream (same JSONL format
//	                 skg-query's -graph flag reads, after the header)
//	wal.log          length-prefixed CRC-checked mutation records
//	                 with seq > the snapshot's seq (plus, transiently,
//	                 already-checkpointed records recovery skips);
//	                 payload codec per codec.go, sniffed at recovery
//
// Recovery (Open) loads the snapshot (whichever of the two names
// exists; the higher covering seq wins if a crash left both), replays
// the WAL tail, discards a torn final record, and truncates the file to
// the valid prefix. The snapshot and its covering sequence number
// travel in one file renamed into place atomically, so there is no
// crash window in which they can disagree; WAL truncation after a
// checkpoint is pure space reclamation. A data directory written by the
// other codec is read as-is and converts at its next checkpoint.
type DB struct {
	dir   string
	store *graph.Store
	wal   *WAL
	tail  *replTail // in-memory record tail for replication (tail.go)
	lock  *os.File  // exclusive flock on the data directory
	opts  Options

	mu         sync.Mutex // serializes checkpoints
	compacting atomic.Bool
	compactErr atomic.Value // error from a background compaction
	compactWG  sync.WaitGroup

	// Recovered reports what Open found: snapshot seq, WAL records
	// replayed, and whether a torn tail was discarded.
	Recovered RecoveryInfo
}

// RecoveryInfo summarizes what Open reconstructed.
type RecoveryInfo struct {
	SnapshotSeq uint64 // checkpoint the snapshot covered (0 = none)
	Replayed    int    // WAL records applied on top of it
	TornTail    bool   // a damaged final record was discarded
	TxDiscarded int    // records of uncommitted transactions discarded
}

// Options tune a DB.
type Options struct {
	// Sync is the WAL fsync policy (default SyncInterval).
	Sync SyncPolicy
	// SyncEvery is the group-commit interval for SyncInterval
	// (default 50ms).
	SyncEvery time.Duration
	// CompactBytes triggers a background checkpoint (snapshot + WAL
	// truncation) once the log exceeds this size. 0 means the 64 MiB
	// default; negative disables automatic compaction.
	CompactBytes int64
	// Codec selects the on-disk encoding for new WAL segments and
	// snapshots (default CodecBinary). Recovery always reads both.
	Codec Codec
	// TailRecords / TailBytes cap the in-memory replication tail
	// (tail.go): how far back a follower stream can be served without
	// rescanning the log file. Defaults: 8192 records, 8 MiB.
	TailRecords int
	TailBytes   int64
}

const (
	snapshotFile    = "snapshot.jsonl"
	snapshotBinFile = "snapshot.skg"
	walFile         = "wal.log"
	lockFile        = "LOCK"
	snapMagic       = "securitykg-wal-snapshot"
	// snapBinMagic opens a binary snapshot file; a uvarint covering seq
	// follows, then the graph binary stream (which has its own magic+CRC).
	snapBinMagic = "skgsnp2\n"
)

type snapHeader struct {
	Magic string `json:"magic"`
	Seq   uint64 `json:"seq"`
}

// Open recovers (or initializes) the data directory and returns a DB
// whose store logs every mutation from here on.
func Open(dir string, opts Options) (*DB, error) {
	if opts.CompactBytes == 0 {
		opts.CompactBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", dir, err)
	}
	// Exactly one process may own a data directory: two appenders would
	// interleave record bytes at the same offset and corrupt the log at
	// the first recovery. flock (not a pid file) so a crashed owner
	// releases automatically.
	lf, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: lock %s: %w", dir, err)
	}
	if err := lockDataDir(lf); err != nil {
		lf.Close()
		return nil, fmt.Errorf("storage: %s is in use by another process (%w)", dir, err)
	}
	// Crashed mid-checkpoint leftovers.
	os.Remove(filepath.Join(dir, snapshotFile+".tmp"))
	os.Remove(filepath.Join(dir, snapshotBinFile+".tmp"))

	owned := false
	defer func() {
		if !owned {
			lf.Close() // closing drops the flock
		}
	}()

	st, snapSeq, err := loadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	db := &DB{dir: dir, store: st, opts: opts, lock: lf}
	db.Recovered.SnapshotSeq = snapSeq

	walPath := filepath.Join(dir, walFile)
	lastSeq := snapSeq
	var validLen int64
	fileCodec := opts.Codec
	var dictSeed []string
	if f, err := os.Open(walPath); err == nil {
		// Recovering from scratch (no snapshot): a header-only pre-pass
		// counts the log's frames so the store's maps start at their
		// final size instead of rehashing their way up through a 20k+
		// insert sequence.
		if st.CountNodes() == 0 {
			if n := countWALFrames(f); n > 0 {
				st.Reserve(n, n)
			}
			if _, serr := f.Seek(0, io.SeekStart); serr != nil {
				f.Close()
				return nil, fmt.Errorf("storage: rewind wal: %w", serr)
			}
		}
		// Stream the valid prefix straight into the store: the scanner
		// decodes each record into one reused slot, the transaction fold
		// releases only committed groups, and ApplyStream folds the
		// result in bulk mode (per-mutation adjacency compaction and
		// stats checks deferred to a single sealing pass) — recovery
		// never materializes the record list, which together with the
		// bulk economics is most of the difference between replaying 20k
		// records and loading the same state from a snapshot.
		sc := newWALScanner(f).reuseAttrs()
		fold := newTxFold(sc)
		var rec Record
		applied, aerr := st.ApplyStream(func() (graph.Mutation, bool) {
			return fold.next(&rec, snapSeq)
		})
		fi, serr := f.Stat()
		f.Close()
		if serr != nil {
			return nil, fmt.Errorf("storage: stat wal: %w", serr)
		}
		if aerr != nil {
			return nil, fmt.Errorf("storage: replay seq %d: %w", rec.Seq, aerr)
		}
		db.Recovered.Replayed += applied
		db.Recovered.TxDiscarded = fold.discarded
		// A transaction left open by the end of the log (crash between a
		// commit's group-flush frames) is cut off exactly like a torn
		// record: the appender resumes from the committed watermark — the
		// scanner state at the last record boundary outside an open
		// group. The dictionary is append-only, so truncating the log to
		// that offset is matched by truncating the dict to its length at
		// that offset.
		valid, scSeq, dict := sc.res.valid, sc.lastSeq, sc.res.dict
		if fold.dangling() {
			valid, scSeq, dict = fold.validAt, fold.seqAt, dict[:fold.dictAt]
		}
		if scSeq > lastSeq {
			lastSeq = scSeq
		}
		validLen = valid
		fileCodec, dictSeed = sc.res.codec, dict
		if sc.res.torn || fi.Size() > valid {
			db.Recovered.TornTail = sc.res.torn || fold.dangling()
			if terr := os.Truncate(walPath, valid); terr != nil {
				return nil, fmt.Errorf("storage: truncate torn wal: %w", terr)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}

	wal, err := openWAL(walPath, validLen, lastSeq, fileCodec, dictSeed, opts.Codec, opts.Sync, opts.SyncEvery)
	if err != nil {
		return nil, err
	}
	db.wal = wal
	db.tail = newReplTail(lastSeq, opts.TailRecords, opts.TailBytes)
	st.SetMutationHook(db.logMutation)
	owned = true
	return db, nil
}

// lockDataDir takes an exclusive non-blocking flock on the lock file.
func lockDataDir(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

// loadSnapshot finds the data directory's snapshot — either codec's
// file name — and loads it (nil-safe on absence: a fresh store at
// seq 0). Normally exactly one of the two names exists; if a crash
// between a checkpoint's rename and its removal of the other name left
// both, the higher covering seq wins (at equal seqs the contents are
// identical — the seq names the exact log prefix folded in — and the
// binary file is picked arbitrarily).
func loadSnapshot(dir string) (*graph.Store, uint64, error) {
	jsonPath := filepath.Join(dir, snapshotFile)
	binPath := filepath.Join(dir, snapshotBinFile)
	jseq, jok, err := jsonSnapshotSeq(jsonPath)
	if err != nil {
		return nil, 0, err
	}
	bseq, bok, err := binSnapshotSeq(binPath)
	if err != nil {
		return nil, 0, err
	}
	switch {
	case bok && (!jok || bseq >= jseq):
		return loadBinSnapshot(binPath)
	case jok:
		return loadJSONSnapshot(jsonPath)
	}
	return graph.New(), 0, nil
}

// jsonSnapshotSeq reads just the header of a JSON snapshot; ok is false
// when the file does not exist.
func jsonSnapshotSeq(path string) (uint64, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	hdr, err := readJSONSnapHeader(bufio.NewReader(f), path)
	if err != nil {
		return 0, false, err
	}
	return hdr.Seq, true, nil
}

func readJSONSnapHeader(br *bufio.Reader, path string) (snapHeader, error) {
	var hdr snapHeader
	line, err := br.ReadBytes('\n')
	if err != nil {
		return hdr, fmt.Errorf("storage: snapshot header: %w", err)
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return hdr, fmt.Errorf("storage: snapshot header: %w", err)
	}
	if hdr.Magic != snapMagic {
		return hdr, fmt.Errorf("storage: %s is not a %s snapshot", path, snapMagic)
	}
	return hdr, nil
}

// binSnapshotSeq reads just the header of a binary snapshot.
func binSnapshotSeq(path string) (uint64, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	seq, err := readBinSnapHeader(bufio.NewReader(f), path)
	if err != nil {
		return 0, false, err
	}
	return seq, true, nil
}

// writeBinSnapHeader frames a binary snapshot stream: the magic plus
// the uvarint covering seq. Checkpoint files and replication snapshot
// transfers (tail.go) share it, which is what lets a follower write
// the transfer verbatim as its snapshot.skg.
func writeBinSnapHeader(w io.Writer, seq uint64) error {
	hdr := make([]byte, 0, len(snapBinMagic)+binary.MaxVarintLen64)
	hdr = append(hdr, snapBinMagic...)
	hdr = binary.AppendUvarint(hdr, seq)
	_, err := w.Write(hdr)
	return err
}

func readBinSnapHeader(br *bufio.Reader, path string) (uint64, error) {
	magic := make([]byte, len(snapBinMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapBinMagic {
		return 0, fmt.Errorf("storage: %s is not a binary snapshot", path)
	}
	seq, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, fmt.Errorf("storage: snapshot header: %w", err)
	}
	return seq, nil
}

func loadJSONSnapshot(path string) (*graph.Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	hdr, err := readJSONSnapHeader(br, path)
	if err != nil {
		return nil, 0, err
	}
	st, err := graph.Load(br)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: load snapshot: %w", err)
	}
	return st, hdr.Seq, nil
}

func loadBinSnapshot(path string) (*graph.Store, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: open snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	seq, err := readBinSnapHeader(br, path)
	if err != nil {
		return nil, 0, err
	}
	st, err := graph.Load(br)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: load snapshot: %w", err)
	}
	return st, seq, nil
}

// logMutation is the store's mutation hook: it runs under the store's
// write lock, so records land in the WAL in exactly mutation order. An
// append failure is sticky on the WAL (Err surfaces it) and the
// in-memory store runs ahead of the log until a checkpoint — which a
// failed append schedules immediately — snapshots the full store and
// re-bases durability past the gap, clearing the sticky error.
func (db *DB) logMutation(m graph.Mutation) {
	seq, err := db.wal.Append(m)
	if err != nil {
		db.scheduleCheckpoint()
		return // sticky until the checkpoint lands; Err() reports it
	}
	// Feed the replication tail an owned copy (the hook contract lets
	// the caller reuse the Attrs map after we return).
	rec := recordFromMutation(cloneMutationAttrs(m))
	rec.Seq = seq
	db.tail.add(rec)
	if db.opts.CompactBytes > 0 && db.wal.Size() > db.opts.CompactBytes {
		db.scheduleCheckpoint()
	}
}

// cloneMutationAttrs deep-copies the mutation's one reference field.
func cloneMutationAttrs(m graph.Mutation) graph.Mutation {
	if len(m.Attrs) > 0 {
		attrs := make(map[string]string, len(m.Attrs))
		for k, v := range m.Attrs {
			attrs[k] = v
		}
		m.Attrs = attrs
	}
	return m
}

// scheduleCheckpoint runs Checkpoint on its own goroutine (the mutation
// hook holds the store's write lock and Checkpoint needs its read
// lock), collapsing concurrent requests into one.
func (db *DB) scheduleCheckpoint() {
	if db.compacting.CompareAndSwap(false, true) {
		// The hook holds the store's write lock and Checkpoint needs its
		// read lock, so compaction must run on its own goroutine.
		db.compactWG.Add(1)
		go func() {
			defer db.compactWG.Done()
			err := db.Checkpoint()
			db.compactErr.Store(errBox{err})
			db.compacting.Store(false)
			// A mutation whose append failed while this checkpoint was in
			// flight is covered by neither the snapshot nor the log (its
			// retry request lost the CAS race against us). If the
			// checkpoint itself worked, run another one to cover it; if
			// the checkpoint failed there is nothing to gain by spinning —
			// the next mutation re-triggers.
			if err == nil && db.wal.Err() != nil {
				db.scheduleCheckpoint()
			}
		}()
	}
}

// Store returns the underlying graph store. Every mutation applied to
// it — directly, through Cypher write clauses, or through the ingestion
// pipeline — is logged.
func (db *DB) Store() *graph.Store { return db.store }

// Checkpoint snapshots the store (with the covering WAL sequence number
// in the snapshot's header, captured under the same lock as the state)
// to a temp file, atomically renames it into place, removes the other
// codec's snapshot file if one was left over, and truncates the WAL if
// nothing was appended meanwhile. This is where a data directory
// converts to the configured codec: the snapshot is written fresh in it
// and the truncated WAL restarts in it.
func (db *DB) Checkpoint() error {
	began := time.Now()
	db.mu.Lock()
	defer db.mu.Unlock()
	name, other := snapshotBinFile, snapshotFile
	if db.opts.Codec == CodecJSON {
		name, other = snapshotFile, snapshotBinFile
	}
	tmp := filepath.Join(db.dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	var seq, fails uint64
	// Quiesce excludes writers (including an open transaction, which
	// holds the writer lock from its first write to commit/rollback) for
	// the duration of the snapshot: the store state and covering seq are
	// captured at a transaction boundary, never mid-group, so a
	// checkpoint can never persist half a transaction whose WAL group is
	// then truncated away.
	err = db.store.Quiesce(func() error {
		if db.opts.Codec == CodecJSON {
			return db.store.SaveWithHeader(f, func(w io.Writer) error {
				seq, fails = db.wal.state()
				return json.NewEncoder(w).Encode(snapHeader{Magic: snapMagic, Seq: seq})
			})
		}
		return db.store.SaveBinaryWithHeader(f, func(w io.Writer) error {
			seq, fails = db.wal.state()
			return writeBinSnapHeader(w, seq)
		})
	})
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: checkpoint rename: %w", err)
	}
	// The freshly-renamed snapshot covers at least as much as whatever
	// the other codec's file held, so it is safe to drop (a crash right
	// before this line leaves both; recovery picks the higher seq).
	os.Remove(filepath.Join(db.dir, other))
	syncDir(db.dir)
	// Truncation (and the sticky-error re-base it performs) is best
	// effort: the snapshot has already landed, which is what Checkpoint
	// promises. If an append failed after the snapshot captured its
	// (seq, fails) pair, truncateThrough keeps the sticky error — that
	// mutation is covered by neither file — and Err() stays loud until
	// the next covering checkpoint (scheduled by our caller or by the
	// next mutation).
	db.wal.truncateThrough(seq, fails)
	// A landed checkpoint supersedes any earlier background-compaction
	// failure.
	db.compactErr.Store(errBox{nil})
	mCheckpoints.Inc()
	mCheckpointSeconds.Observe(time.Since(began).Seconds())
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss; best
// effort (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Sync forces the WAL to disk (exposed so callers can group-commit
// around a batch regardless of policy).
func (db *DB) Sync() error { return db.wal.Sync() }

// LastSeq returns the last logged sequence number.
func (db *DB) LastSeq() uint64 { return db.wal.LastSeq() }

// WALSize returns the current log size in bytes.
func (db *DB) WALSize() int64 { return db.wal.Size() }

// errBox wraps an error (possibly nil) for atomic.Value, which cannot
// hold a nil interface directly.
type errBox struct{ err error }

// Err returns the current durability failure, if any: a sticky WAL
// append/flush error (cleared once a covering checkpoint re-bases the
// log) or the most recent background compaction error. Long-running
// callers should surface it — writes keep succeeding in memory while
// it is non-nil, but they are not durable.
func (db *DB) Err() error {
	if err := db.wal.Err(); err != nil {
		return err
	}
	if v := db.compactErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// Close detaches the store's hook, waits for any in-flight compaction,
// and flushes + fsyncs + closes the WAL. The store remains usable (but
// no longer durable) afterwards. Callers wanting a fresh snapshot on
// shutdown run Checkpoint first.
func (db *DB) Close() error {
	db.store.SetMutationHook(nil)
	db.compactWG.Wait()
	err := db.wal.Close()
	db.lock.Close() // drops the flock; the directory is free to reopen
	return err
}
