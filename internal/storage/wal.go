// Package storage is the durability subsystem underneath the in-memory
// graph store: an append-only write-ahead log of logical mutations, a
// snapshot format that wraps the graph's stable Save/Load JSONL stream,
// and recovery that turns a data directory back into the exact store
// that was running before a crash.
//
// The design follows the log-structured discipline of datom-log stores
// (janus-datalog's replayable assert/retract sequence): the source of
// truth is the ordered mutation log, the in-memory store is a cache of
// its fold, and a snapshot is just a checkpoint that lets recovery skip
// a log prefix. Because every graph.Store operation is deterministic
// given prior state, replaying the surviving log prefix reproduces the
// pre-crash store byte-for-byte — torn final records are expected
// (a crash mid-append) and discarded.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"securitykg/internal/graph"
)

// Record is one WAL entry: a logical store mutation plus its log
// sequence number. Seq is assigned at append time and is strictly
// increasing within one data directory; snapshots record the Seq they
// cover, so recovery applies only records past the checkpoint.
type Record struct {
	Seq   uint64            `json:"seq"`
	Op    graph.MutationOp  `json:"op"`
	Type  string            `json:"type,omitempty"`
	Name  string            `json:"name,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
	From  graph.NodeID      `json:"from,omitempty"`
	To    graph.NodeID      `json:"to,omitempty"`
	Node  graph.NodeID      `json:"node,omitempty"`
	Edge  graph.EdgeID      `json:"edge,omitempty"`
	Key   string            `json:"key,omitempty"`
	Val   string            `json:"val,omitempty"`
}

// recordFromMutation wraps a graph mutation as a WAL record (Seq filled
// in by the appender).
func recordFromMutation(m graph.Mutation) Record {
	return Record{
		Op: m.Op, Type: m.Type, Name: m.Name, Attrs: m.Attrs,
		From: m.From, To: m.To, Node: m.Node, Edge: m.Edge,
		Key: m.Key, Val: m.Val,
	}
}

// Mutation converts the record back to the graph-layer mutation it logs.
func (r Record) Mutation() graph.Mutation {
	return graph.Mutation{
		Op: r.Op, Type: r.Type, Name: r.Name, Attrs: r.Attrs,
		From: r.From, To: r.To, Node: r.Node, Edge: r.Edge,
		Key: r.Key, Val: r.Val,
	}
}

// On-disk framing: each record is
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32 (IEEE) of the payload
//	[]byte  payload (binary- or JSON-encoded Record; see codec.go)
//
// A binary-codec log additionally opens with the 8-byte walMagic file
// header; a JSON log starts directly at the first frame, which is how
// legacy directories stay readable. The length comes first so a reader
// can skip to the checksum decision without parsing the payload; the
// CRC covers only the payload, so a torn header, a torn payload, and a
// bit-flipped payload are all detected the same way: the record (and
// everything after it) is discarded.

const (
	recordHeaderLen = 8
	// maxRecordLen bounds a single record so a corrupt length prefix
	// cannot ask the reader to allocate gigabytes. Mutations are small
	// (a node's attrs at most); 16 MiB is orders of magnitude of slack.
	maxRecordLen = 16 << 20
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncInterval groups commits: appends return after the buffered
	// write, and a background ticker fsyncs every Options.SyncEvery.
	// One fsync covers every append since the last — the group-commit
	// default. A crash can lose at most the last interval's writes.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged mutation is
	// ever lost, at one fsync per write.
	SyncAlways
	// SyncNever never fsyncs explicitly; the OS flushes on its own
	// schedule. Fastest, loses the page cache on power failure, still
	// safe against process crashes (the kernel has the writes).
	SyncNever
)

// ParseSyncPolicy maps the --fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return "interval"
}

// WAL is the append-only mutation log. Appends are serialized by an
// internal mutex; in practice they already arrive serialized, because
// the store invokes its mutation hook under its write lock.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	size    int64
	lastSeq uint64
	policy  SyncPolicy
	dirty   bool   // buffered-or-unsynced bytes since the last fsync
	err     error  // sticky: first append/flush failure poisons the log
	fails   uint64 // appends that failed (these never advance lastSeq)

	// codec is the format of the bytes already in the file — appends must
	// match it. wantCodec is the configured format, adopted whenever the
	// file restarts from empty (truncation after a covering checkpoint),
	// which is how legacy JSON logs upgrade without an in-place rewrite.
	codec     Codec
	wantCodec Codec
	dict      *walDict              // encode-side in-band dictionary (binary codec)
	encBuf    []byte                // reusable binary payload scratch
	keyBuf    []string              // reusable attr-key sort scratch
	hdrBuf    [recordHeaderLen]byte // framing scratch; a local escapes via the Write call

	closed   bool
	stopSync chan struct{} // stops the interval-sync goroutine
	syncDone chan struct{}
}

// fileHdrLen returns the byte length of the current file's codec header
// (the walMagic for binary logs); size equal to it means "empty log".
func (w *WAL) fileHdrLen() int64 {
	if w.codec == CodecBinary {
		return int64(len(walMagic))
	}
	return 0
}

// openWAL opens (creating if needed) the log file for appending at
// offset size, with lastSeq, the file's codec, and the binary
// dictionary seeded from recovery's scan. An empty file adopts want —
// writing the binary magic up front — instead of the scanned codec.
func openWAL(path string, size int64, lastSeq uint64, fileCodec Codec, dictSeed []string, want Codec, policy SyncPolicy, every time.Duration) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	w := &WAL{
		f: f, w: bufio.NewWriterSize(f, 1<<16),
		size: size, lastSeq: lastSeq, policy: policy,
		codec: fileCodec, wantCodec: want,
	}
	if size == 0 {
		w.codec = want
		if err := w.beginFileLocked(); err != nil {
			f.Close()
			return nil, err
		}
	} else if w.codec == CodecBinary {
		w.dict = newWALDict(dictSeed)
	}
	if policy == SyncInterval {
		if every <= 0 {
			every = 50 * time.Millisecond
		}
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop(every)
	}
	return w, nil
}

// beginFileLocked initializes an empty log file for w.codec: the binary
// codec writes its magic header (buffered; it reaches disk with the
// first flush) and starts a fresh dictionary.
func (w *WAL) beginFileLocked() error {
	if w.codec != CodecBinary {
		w.dict = nil
		return nil
	}
	if _, err := w.w.WriteString(walMagic); err != nil {
		return fmt.Errorf("storage: write wal header: %w", err)
	}
	w.size = int64(len(walMagic))
	w.dirty = true
	w.dict = newWALDict(nil)
	return nil
}

func (w *WAL) syncLoop(every time.Duration) {
	defer close(w.syncDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && w.err == nil && !w.closed {
				if err := w.flushLocked(true); err != nil {
					w.err = err
				}
			}
			w.mu.Unlock()
		}
	}
}

// Append encodes the mutation as the next record and writes it,
// returning the sequence number it was assigned. The write is flushed
// to the OS before returning (so a process crash never loses an
// acknowledged append); whether it is fsynced depends on the policy.
// Errors are sticky: once an append fails, the WAL refuses further
// writes and Err/Close report the failure.
func (w *WAL) Append(m graph.Mutation) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.fails++
		return 0, w.err
	}
	if w.closed {
		return 0, errors.New("storage: append to closed WAL")
	}
	rec := recordFromMutation(m)
	rec.Seq = w.lastSeq + 1
	var payload []byte
	if w.codec == CodecBinary {
		// Encoding into the reusable scratch keeps the append hot path
		// allocation-free. The dictionary mutates as we encode; if any
		// later step fails the error is sticky, so no bytes diverging
		// from the dictionary state can ever reach the file.
		w.encBuf, w.keyBuf = encodeRecordBinary(w.encBuf[:0], rec, w.dict, w.keyBuf)
		payload = w.encBuf
	} else {
		var err error
		payload, err = json.Marshal(rec)
		if err != nil {
			w.err = fmt.Errorf("storage: encode record: %w", err)
			w.fails++
			return 0, w.err
		}
	}
	if len(payload) > maxRecordLen {
		// Never frame a record the reader is obliged to reject: an
		// oversize record would be acknowledged now and then discarded —
		// along with every record after it — at recovery. Refuse it
		// (sticky), leaving the store ahead of the log until a
		// checkpoint re-bases durability.
		w.err = fmt.Errorf("storage: mutation record is %d bytes, past the %d-byte limit", len(payload), maxRecordLen)
		w.fails++
		return 0, w.err
	}
	hdr := w.hdrBuf[:]
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr); err != nil {
		w.err = fmt.Errorf("storage: append: %w", err)
		w.fails++
		return 0, w.err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = fmt.Errorf("storage: append: %w", err)
		w.fails++
		return 0, w.err
	}
	if err := w.flushLocked(w.policy == SyncAlways); err != nil {
		w.err = err
		w.fails++
		return 0, w.err
	}
	w.lastSeq = rec.Seq
	w.size += int64(recordHeaderLen + len(payload))
	mWALAppends.Inc()
	mWALBytes.Add(int64(recordHeaderLen + len(payload)))
	return rec.Seq, nil
}

// flushLocked drains the buffer to the OS and optionally fsyncs.
func (w *WAL) flushLocked(sync bool) error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush wal: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: fsync wal: %w", err)
		}
		mWALFsyncs.Inc()
		w.dirty = false
	} else {
		w.dirty = true
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if err := w.flushLocked(true); err != nil {
		w.err = err
	}
	return w.err
}

// LastSeq returns the sequence number of the last appended record.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// state returns (lastSeq, fails) atomically: the checkpoint captures
// both under the store's read lock so it can later tell whether an
// append failed after the snapshot was taken.
func (w *WAL) state() (uint64, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq, w.fails
}

// Size returns the current log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err returns the sticky append/flush error, if any. The in-memory
// store stays ahead of a poisoned log; the next successful checkpoint
// (which snapshots the full store) re-bases durability past the gap.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// truncateThrough discards the log if (and only if) everything in it is
// covered by a snapshot at seq: called after a checkpoint. If an append
// slipped in after the snapshot captured seq, the log keeps its tail —
// the next checkpoint reclaims it. Recovery is indifferent either way
// (records ≤ the snapshot seq are skipped), so a crash anywhere around
// truncation is safe; this is space reclamation, not correctness.
//
// A sticky append error does not block truncation: failed appends never
// advanced lastSeq, so a snapshot at lastSeq covers the full store —
// including the mutations the log missed — and truncating behind it
// re-bases durability past the gap, clearing the sticky error so
// appends can resume. fails is the failure count captured with the
// snapshot: if another append failed AFTER the snapshot was taken,
// that mutation is in neither the snapshot nor the log, so the sticky
// error must survive this truncation (the caller schedules another
// covering checkpoint).
func (w *WAL) truncateThrough(seq, fails uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.lastSeq != seq ||
		(w.size <= w.fileHdrLen() && w.codec == w.wantCodec && w.err == nil) {
		return w.err
	}
	if w.fails != fails {
		// A mutation slipped into the store (and past the snapshot)
		// without reaching the log; this snapshot does not cover it.
		return w.err
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("storage: truncate wal: %w", err)
		return w.err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.err = fmt.Errorf("storage: rewind wal: %w", err)
		return w.err
	}
	w.w.Reset(w.f)
	w.size = 0
	w.dirty = true // the truncation itself should reach disk eventually
	w.err = nil    // the snapshot covers everything the log missed
	// A fresh file restarts in the configured codec — this is the only
	// point a log ever changes format (and where the dictionary resets,
	// keeping encoder state in lockstep with the bytes on disk).
	w.codec = w.wantCodec
	if err := w.beginFileLocked(); err != nil {
		w.err = err
	}
	return w.err
}

// Close flushes, fsyncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.err
	}
	w.closed = true
	var err error
	if w.err == nil {
		err = w.flushLocked(true)
	}
	cerr := w.f.Close()
	if err == nil {
		err = cerr
	}
	if w.err == nil {
		w.err = err
	}
	stop := w.stopSync
	done := w.syncDone
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// replayResult is what scanning a WAL file yields: the records of the
// valid prefix, the byte offset where that prefix ends, whether a
// torn/corrupt tail was discarded after it, the codec the file was
// written in, and (for binary logs) the in-band dictionary accumulated
// over the valid prefix — exactly the state an appender must resume
// with.
type replayResult struct {
	records []Record
	valid   int64
	torn    bool
	codec   Codec
	dict    []string
}

// walScanner walks a log's valid record prefix one record at a time,
// sniffing the codec from the file's first bytes (walMagic → binary;
// anything else, including a legacy log's first length prefix → JSON).
// Damage — a short header, a length past the size bound, a CRC
// mismatch, a short payload, an undecodable payload, or a sequence
// number that does not increase — ends the scan: nothing after a bad
// record can be trusted, because record boundaries are only known by
// walking the length prefixes. This is exactly the torn-final-record
// tolerance a crash mid-append requires, generalized to arbitrary
// corruption. A JSON log can never sniff as binary: its first four
// bytes are a record length, and the length walMagic's bytes spell is
// far past maxRecordLen.
//
// Streaming (next into a caller-reused Record) rather than returning
// the record list keeps recovery of a long tail from materializing
// every record: the caller folds each one into the store and the
// scanner's two scratch buffers are the only per-record state.
type walScanner struct {
	br      *bufio.Reader
	res     replayResult // records stays nil; valid/torn/codec/dict accumulate
	lastSeq uint64
	hdr     [recordHeaderLen]byte
	payload []byte
	// attrs, when non-nil, is handed to the binary decoder as a reusable
	// attribute map. Only streaming consumers that fold each record into
	// the store before asking for the next may set it (reuseAttrs):
	// records sharing the map must never be retained side by side.
	attrs map[string]string
}

// reuseAttrs opts the scanner into attribute-map reuse across records.
// Callers that collect records (scanWAL) must not enable it.
func (sc *walScanner) reuseAttrs() *walScanner {
	sc.attrs = make(map[string]string, 8)
	return sc
}

func newWALScanner(r io.Reader) *walScanner {
	sc := &walScanner{br: bufio.NewReaderSize(r, 1<<16), res: replayResult{codec: CodecJSON}}
	if head, err := sc.br.Peek(len(walMagic)); err == nil && string(head) == walMagic {
		sc.br.Discard(len(walMagic))
		sc.res.codec = CodecBinary
		sc.res.valid = int64(len(walMagic))
	}
	return sc
}

// next decodes the next valid record into *rec, returning false at the
// end of the valid prefix (EOF or first damage; res.torn tells which).
// Payload scratch reuse is safe because both decoders copy every
// string they keep (string conversions; the dictionary appends the
// copies) — nothing aliases the buffer across calls.
func (sc *walScanner) next(rec *Record) bool {
	if sc.res.torn {
		return false
	}
	if _, err := io.ReadFull(sc.br, sc.hdr[:]); err != nil {
		sc.res.torn = !errors.Is(err, io.EOF)
		return false
	}
	n := binary.LittleEndian.Uint32(sc.hdr[0:4])
	want := binary.LittleEndian.Uint32(sc.hdr[4:8])
	if n == 0 || n > maxRecordLen {
		sc.res.torn = true
		return false
	}
	if cap(sc.payload) < int(n) {
		sc.payload = make([]byte, n)
	}
	sc.payload = sc.payload[:n]
	if _, err := io.ReadFull(sc.br, sc.payload); err != nil {
		sc.res.torn = true
		return false
	}
	if crc32.ChecksumIEEE(sc.payload) != want {
		sc.res.torn = true
		return false
	}
	if sc.res.codec == CodecBinary {
		if derr := decodeRecordBinaryInto(sc.payload, &sc.res.dict, rec, sc.attrs); derr != nil {
			sc.res.torn = true
			return false
		}
	} else {
		*rec = Record{}
		if err := json.Unmarshal(sc.payload, rec); err != nil {
			sc.res.torn = true
			return false
		}
	}
	if rec.Seq <= sc.lastSeq {
		sc.res.torn = true
		return false
	}
	sc.lastSeq = rec.Seq
	sc.res.valid += int64(recordHeaderLen) + int64(n)
	return true
}

// countWALFrames walks the record framing (headers only — no CRC, no
// decode) and returns an upper bound on how many records the file
// holds. Recovery uses it to pre-size the store's maps before a long
// replay; garbage past a torn tail can only inflate the count, which
// Reserve tolerates (it is a sizing hint, bounded by file size).
func countWALFrames(r io.Reader) int {
	br := bufio.NewReaderSize(r, 1<<16)
	if head, err := br.Peek(len(walMagic)); err == nil && string(head) == walMagic {
		br.Discard(len(walMagic))
	}
	count := 0
	var hdr [recordHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return count
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n == 0 || n > maxRecordLen {
			return count
		}
		if _, err := br.Discard(int(n)); err != nil {
			return count
		}
		count++
	}
}

// scanWAL collects the whole valid prefix — the convenience form the
// tests and ReplayReader use; recovery streams via walScanner instead.
func scanWAL(r io.Reader) replayResult {
	sc := newWALScanner(r)
	var rec Record
	for sc.next(&rec) {
		sc.res.records = append(sc.res.records, rec)
	}
	return sc.res
}

// txFold layers transaction semantics over a walScanner: mutations
// between a tx_begin and its tx_commit are buffered and released to the
// consumer only once the commit record is scanned; a tx_rollback, a
// tx_begin inside an open group (can only come from a foreign or
// corrupted log), or end-of-log with the group still open discards the
// buffered records. The fold also tracks the committed watermark — the
// scanner state at the last record boundary outside an open
// transaction — so recovery can truncate a dangling group off the log
// tail exactly like a torn record: validAt/seqAt/dictAt are what the
// appender must resume from when the log is cut there.
type txFold struct {
	sc        *walScanner
	inTx      bool
	pending   []graph.Mutation
	drain     int // next pending index to hand out; -1 when not draining
	discarded int // records of open/rolled-back groups that were dropped

	validAt int64  // committed watermark: byte offset
	seqAt   uint64 // committed watermark: last sequence number
	dictAt  int    // committed watermark: dictionary length
}

func newTxFold(sc *walScanner) *txFold {
	tf := &txFold{sc: sc, drain: -1}
	tf.mark()
	return tf
}

// mark advances the committed watermark to the scanner's current state.
func (tf *txFold) mark() {
	tf.validAt = tf.sc.res.valid
	tf.seqAt = tf.sc.lastSeq
	tf.dictAt = len(tf.sc.res.dict)
}

// dangling reports whether the log ended inside an open transaction —
// the caller should truncate to the committed watermark.
func (tf *txFold) dangling() bool { return tf.inTx }

// next yields the next mutation to replay, skipping records with
// seq <= afterSeq (already covered by a snapshot). rec is the caller's
// scratch record slot (shared with the scanner).
func (tf *txFold) next(rec *Record, afterSeq uint64) (graph.Mutation, bool) {
	for {
		if tf.drain >= 0 {
			if tf.drain < len(tf.pending) {
				m := tf.pending[tf.drain]
				tf.drain++
				return m, true
			}
			tf.drain = -1
			tf.pending = tf.pending[:0]
		}
		if !tf.sc.next(rec) {
			if tf.inTx {
				tf.discarded += len(tf.pending) + 1 // +1 for the tx_begin
				tf.pending = tf.pending[:0]
			}
			return graph.Mutation{}, false
		}
		switch rec.Op {
		case graph.OpTxBegin:
			if tf.inTx {
				tf.discarded += len(tf.pending) + 1
				tf.pending = tf.pending[:0]
			}
			tf.inTx = true
		case graph.OpTxCommit:
			if tf.inTx {
				tf.inTx = false
				tf.mark()
				tf.drain = 0 // release the group (possibly empty)
			} else {
				tf.mark() // stray commit outside a group: ignore
			}
		case graph.OpTxRollback:
			if tf.inTx {
				tf.discarded += len(tf.pending) + 2 // begin + rollback
				tf.pending = tf.pending[:0]
				tf.inTx = false
			}
			tf.mark()
		default:
			if tf.inTx {
				if rec.Seq > afterSeq {
					// The scanner may reuse the record's attr map for the
					// next decode; buffered mutations need their own copy.
					m := rec.Mutation()
					if len(m.Attrs) > 0 {
						attrs := make(map[string]string, len(m.Attrs))
						for k, v := range m.Attrs {
							attrs[k] = v
						}
						m.Attrs = attrs
					}
					tf.pending = append(tf.pending, m)
				}
				continue
			}
			tf.mark()
			if rec.Seq > afterSeq {
				return rec.Mutation(), true
			}
		}
	}
}

// ReplayReader applies every valid record in r with seq > afterSeq to
// the store — transactional groups atomically: only committed groups
// replay, and a group left open by the end of the log is discarded like
// a torn record. Returns how many mutations were applied and whether a
// damaged or dangling tail was discarded. Exposed for fuzzing and
// tests; Open wires the same fold into directory recovery.
func ReplayReader(r io.Reader, st *graph.Store, afterSeq uint64) (applied int, torn bool, err error) {
	sc := newWALScanner(r).reuseAttrs()
	fold := newTxFold(sc)
	var rec Record
	applied, aerr := st.ApplyStream(func() (graph.Mutation, bool) {
		return fold.next(&rec, afterSeq)
	})
	if aerr != nil {
		return applied, sc.res.torn, fmt.Errorf("storage: replay seq %d: %w", rec.Seq, aerr)
	}
	return applied, sc.res.torn || fold.dangling(), nil
}
