// Package storage is the durability subsystem underneath the in-memory
// graph store: an append-only write-ahead log of logical mutations, a
// snapshot format that wraps the graph's stable Save/Load JSONL stream,
// and recovery that turns a data directory back into the exact store
// that was running before a crash.
//
// The design follows the log-structured discipline of datom-log stores
// (janus-datalog's replayable assert/retract sequence): the source of
// truth is the ordered mutation log, the in-memory store is a cache of
// its fold, and a snapshot is just a checkpoint that lets recovery skip
// a log prefix. Because every graph.Store operation is deterministic
// given prior state, replaying the surviving log prefix reproduces the
// pre-crash store byte-for-byte — torn final records are expected
// (a crash mid-append) and discarded.
package storage

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"securitykg/internal/graph"
)

// Record is one WAL entry: a logical store mutation plus its log
// sequence number. Seq is assigned at append time and is strictly
// increasing within one data directory; snapshots record the Seq they
// cover, so recovery applies only records past the checkpoint.
type Record struct {
	Seq   uint64            `json:"seq"`
	Op    graph.MutationOp  `json:"op"`
	Type  string            `json:"type,omitempty"`
	Name  string            `json:"name,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
	From  graph.NodeID      `json:"from,omitempty"`
	To    graph.NodeID      `json:"to,omitempty"`
	Node  graph.NodeID      `json:"node,omitempty"`
	Edge  graph.EdgeID      `json:"edge,omitempty"`
	Key   string            `json:"key,omitempty"`
	Val   string            `json:"val,omitempty"`
}

// recordFromMutation wraps a graph mutation as a WAL record (Seq filled
// in by the appender).
func recordFromMutation(m graph.Mutation) Record {
	return Record{
		Op: m.Op, Type: m.Type, Name: m.Name, Attrs: m.Attrs,
		From: m.From, To: m.To, Node: m.Node, Edge: m.Edge,
		Key: m.Key, Val: m.Val,
	}
}

// Mutation converts the record back to the graph-layer mutation it logs.
func (r Record) Mutation() graph.Mutation {
	return graph.Mutation{
		Op: r.Op, Type: r.Type, Name: r.Name, Attrs: r.Attrs,
		From: r.From, To: r.To, Node: r.Node, Edge: r.Edge,
		Key: r.Key, Val: r.Val,
	}
}

// On-disk framing: each record is
//
//	uint32  payload length (little-endian)
//	uint32  CRC-32 (IEEE) of the payload
//	[]byte  payload (JSON-encoded Record)
//
// The length comes first so a reader can skip to the checksum decision
// without parsing JSON; the CRC covers only the payload, so a torn
// header, a torn payload, and a bit-flipped payload are all detected
// the same way: the record (and everything after it) is discarded.

const (
	recordHeaderLen = 8
	// maxRecordLen bounds a single record so a corrupt length prefix
	// cannot ask the reader to allocate gigabytes. Mutations are small
	// (a node's attrs at most); 16 MiB is orders of magnitude of slack.
	maxRecordLen = 16 << 20
)

// SyncPolicy selects when the WAL calls fsync.
type SyncPolicy int

const (
	// SyncInterval groups commits: appends return after the buffered
	// write, and a background ticker fsyncs every Options.SyncEvery.
	// One fsync covers every append since the last — the group-commit
	// default. A crash can lose at most the last interval's writes.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append: no acknowledged mutation is
	// ever lost, at one fsync per write.
	SyncAlways
	// SyncNever never fsyncs explicitly; the OS flushes on its own
	// schedule. Fastest, loses the page cache on power failure, still
	// safe against process crashes (the kernel has the writes).
	SyncNever
)

// ParseSyncPolicy maps the --fsync flag values onto policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval", "":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return "interval"
}

// WAL is the append-only mutation log. Appends are serialized by an
// internal mutex; in practice they already arrive serialized, because
// the store invokes its mutation hook under its write lock.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	size    int64
	lastSeq uint64
	policy  SyncPolicy
	dirty   bool   // buffered-or-unsynced bytes since the last fsync
	err     error  // sticky: first append/flush failure poisons the log
	fails   uint64 // appends that failed (these never advance lastSeq)

	closed   bool
	stopSync chan struct{} // stops the interval-sync goroutine
	syncDone chan struct{}
}

// openWAL opens (creating if needed) the log file for appending at
// offset size, with lastSeq seeded from recovery.
func openWAL(path string, size int64, lastSeq uint64, policy SyncPolicy, every time.Duration) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	w := &WAL{
		f: f, w: bufio.NewWriterSize(f, 1<<16),
		size: size, lastSeq: lastSeq, policy: policy,
	}
	if policy == SyncInterval {
		if every <= 0 {
			every = 50 * time.Millisecond
		}
		w.stopSync = make(chan struct{})
		w.syncDone = make(chan struct{})
		go w.syncLoop(every)
	}
	return w, nil
}

func (w *WAL) syncLoop(every time.Duration) {
	defer close(w.syncDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.stopSync:
			return
		case <-t.C:
			w.mu.Lock()
			if w.dirty && w.err == nil && !w.closed {
				if err := w.flushLocked(true); err != nil {
					w.err = err
				}
			}
			w.mu.Unlock()
		}
	}
}

// Append encodes the mutation as the next record and writes it. The
// write is flushed to the OS before returning (so a process crash never
// loses an acknowledged append); whether it is fsynced depends on the
// policy. Errors are sticky: once an append fails, the WAL refuses
// further writes and Err/Close report the failure.
func (w *WAL) Append(m graph.Mutation) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		w.fails++
		return w.err
	}
	if w.closed {
		return errors.New("storage: append to closed WAL")
	}
	rec := recordFromMutation(m)
	rec.Seq = w.lastSeq + 1
	payload, err := json.Marshal(rec)
	if err != nil {
		w.err = fmt.Errorf("storage: encode record: %w", err)
		w.fails++
		return w.err
	}
	if len(payload) > maxRecordLen {
		// Never frame a record the reader is obliged to reject: an
		// oversize record would be acknowledged now and then discarded —
		// along with every record after it — at recovery. Refuse it
		// (sticky), leaving the store ahead of the log until a
		// checkpoint re-bases durability.
		w.err = fmt.Errorf("storage: mutation record is %d bytes, past the %d-byte limit", len(payload), maxRecordLen)
		w.fails++
		return w.err
	}
	var hdr [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.w.Write(hdr[:]); err != nil {
		w.err = fmt.Errorf("storage: append: %w", err)
		w.fails++
		return w.err
	}
	if _, err := w.w.Write(payload); err != nil {
		w.err = fmt.Errorf("storage: append: %w", err)
		w.fails++
		return w.err
	}
	if err := w.flushLocked(w.policy == SyncAlways); err != nil {
		w.err = err
		w.fails++
		return w.err
	}
	w.lastSeq = rec.Seq
	w.size += int64(recordHeaderLen + len(payload))
	return nil
}

// flushLocked drains the buffer to the OS and optionally fsyncs.
func (w *WAL) flushLocked(sync bool) error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush wal: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: fsync wal: %w", err)
		}
		w.dirty = false
	} else {
		w.dirty = true
	}
	return nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if err := w.flushLocked(true); err != nil {
		w.err = err
	}
	return w.err
}

// LastSeq returns the sequence number of the last appended record.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// state returns (lastSeq, fails) atomically: the checkpoint captures
// both under the store's read lock so it can later tell whether an
// append failed after the snapshot was taken.
func (w *WAL) state() (uint64, uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq, w.fails
}

// Size returns the current log size in bytes.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Err returns the sticky append/flush error, if any. The in-memory
// store stays ahead of a poisoned log; the next successful checkpoint
// (which snapshots the full store) re-bases durability past the gap.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// truncateThrough discards the log if (and only if) everything in it is
// covered by a snapshot at seq: called after a checkpoint. If an append
// slipped in after the snapshot captured seq, the log keeps its tail —
// the next checkpoint reclaims it. Recovery is indifferent either way
// (records ≤ the snapshot seq are skipped), so a crash anywhere around
// truncation is safe; this is space reclamation, not correctness.
//
// A sticky append error does not block truncation: failed appends never
// advanced lastSeq, so a snapshot at lastSeq covers the full store —
// including the mutations the log missed — and truncating behind it
// re-bases durability past the gap, clearing the sticky error so
// appends can resume. fails is the failure count captured with the
// snapshot: if another append failed AFTER the snapshot was taken,
// that mutation is in neither the snapshot nor the log, so the sticky
// error must survive this truncation (the caller schedules another
// covering checkpoint).
func (w *WAL) truncateThrough(seq, fails uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.lastSeq != seq || (w.size == 0 && w.err == nil) {
		return w.err
	}
	if w.fails != fails {
		// A mutation slipped into the store (and past the snapshot)
		// without reaching the log; this snapshot does not cover it.
		return w.err
	}
	if err := w.w.Flush(); err != nil && w.err == nil {
		w.err = err
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		w.err = fmt.Errorf("storage: truncate wal: %w", err)
		return w.err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		w.err = fmt.Errorf("storage: rewind wal: %w", err)
		return w.err
	}
	w.w.Reset(w.f)
	w.size = 0
	w.dirty = true // the truncation itself should reach disk eventually
	w.err = nil    // the snapshot covers everything the log missed
	return nil
}

// Close flushes, fsyncs and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return w.err
	}
	w.closed = true
	var err error
	if w.err == nil {
		err = w.flushLocked(true)
	}
	cerr := w.f.Close()
	if err == nil {
		err = cerr
	}
	if w.err == nil {
		w.err = err
	}
	stop := w.stopSync
	done := w.syncDone
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}

// replayResult is what scanning a WAL file yields: the records of the
// valid prefix, the byte offset where that prefix ends, and whether a
// torn/corrupt tail was discarded after it.
type replayResult struct {
	records []Record
	valid   int64
	torn    bool
}

// scanWAL reads records from r until EOF or the first damaged record.
// Damage — a short header, a length past the size bound, a CRC
// mismatch, a short payload, unparseable JSON, or a sequence number
// that does not increase — ends the scan: nothing after a bad record
// can be trusted, because record boundaries are only known by walking
// the length prefixes. This is exactly the torn-final-record tolerance
// a crash mid-append requires, generalized to arbitrary corruption.
func scanWAL(r io.Reader) replayResult {
	br := bufio.NewReaderSize(r, 1<<16)
	var res replayResult
	var lastSeq uint64
	for {
		var hdr [recordHeaderLen]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			res.torn = !errors.Is(err, io.EOF)
			return res
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxRecordLen {
			res.torn = true
			return res
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			res.torn = true
			return res
		}
		if crc32.ChecksumIEEE(payload) != want {
			res.torn = true
			return res
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			res.torn = true
			return res
		}
		if rec.Seq <= lastSeq {
			res.torn = true
			return res
		}
		lastSeq = rec.Seq
		res.records = append(res.records, rec)
		res.valid += int64(recordHeaderLen) + int64(n)
	}
}

// ReplayReader applies every valid record in r with seq > afterSeq to
// the store, returning how many records were applied and whether a
// damaged tail was discarded. Exposed for fuzzing and tests; Open wires
// it into directory recovery.
func ReplayReader(r io.Reader, st *graph.Store, afterSeq uint64) (applied int, torn bool, err error) {
	res := scanWAL(r)
	for _, rec := range res.records {
		if rec.Seq <= afterSeq {
			continue
		}
		if aerr := st.Apply(rec.Mutation()); aerr != nil {
			return applied, res.torn, fmt.Errorf("storage: replay seq %d: %w", rec.Seq, aerr)
		}
		applied++
	}
	return applied, res.torn, nil
}
