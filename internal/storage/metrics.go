package storage

import "securitykg/internal/metrics"

// Durability counters on the process-wide registry. The append-path
// increments are atomic adds on an already-mutex-guarded path, keeping
// the zero-alloc binary append guarantee intact (counters allocate at
// package init, never per record).
var (
	mWALAppends = metrics.NewCounter("skg_wal_appends_total",
		"WAL records appended (acknowledged writes).")
	mWALBytes = metrics.NewCounter("skg_wal_bytes_total",
		"Bytes written to the WAL, frame headers included.")
	mWALFsyncs = metrics.NewCounter("skg_wal_fsyncs_total",
		"WAL fsync calls (per-write under SyncAlways, batched under group commit).")
	mCheckpointSeconds = metrics.NewHistogram("skg_checkpoint_seconds",
		"Checkpoint durations: snapshot write + fsync + rename + WAL truncation.",
		metrics.DurationBuckets)
	mCheckpoints = metrics.NewCounter("skg_checkpoints_total",
		"Completed checkpoints (snapshot + WAL truncation).")
)
