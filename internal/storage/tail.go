package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"securitykg/internal/graph"
)

// This file is the storage side of WAL-shipping replication
// (internal/replication): an in-memory tail of recently appended
// records so a leader can serve follower streams without rescanning
// the log file, a committed watermark that stops streams at transaction
// group boundaries (a follower must never observe an uncommitted
// prefix), a disk fallback for followers further behind than the tail
// buffer reaches, and snapshot export/install for catch-up transfers.

// replTail buffers the most recent WAL records. Records are contiguous
// by Seq; eviction drops from the front, so a follower that falls
// further behind than the buffer reaches is redirected to the disk
// scan (and past that, to a snapshot transfer). committed is the last
// sequence number at a transaction-group boundary — the highest record
// a replication stream may ship.
type replTail struct {
	mu        sync.Mutex
	recs      []Record
	bytes     int64 // approximate retained payload bytes
	maxRecs   int
	maxBytes  int64
	inTx      bool
	committed uint64
	notify    chan struct{} // closed and replaced when committed advances
}

func newReplTail(lastSeq uint64, maxRecs int, maxBytes int64) *replTail {
	if maxRecs <= 0 {
		maxRecs = 8192
	}
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	return &replTail{
		committed: lastSeq,
		maxRecs:   maxRecs,
		maxBytes:  maxBytes,
		notify:    make(chan struct{}),
	}
}

// recSize approximates a record's retained bytes for eviction.
func recSize(r *Record) int64 {
	n := 64 + len(r.Type) + len(r.Name) + len(r.Key) + len(r.Val)
	for k, v := range r.Attrs {
		n += len(k) + len(v) + 32
	}
	return int64(n)
}

// add appends one just-logged record. The caller passes an owned copy
// (attrs cloned): the mutation hook's map must not be retained.
func (t *replTail) add(rec Record) {
	t.mu.Lock()
	t.recs = append(t.recs, rec)
	t.bytes += recSize(&rec)
	for (len(t.recs) > t.maxRecs || t.bytes > t.maxBytes) && len(t.recs) > 1 {
		t.bytes -= recSize(&t.recs[0])
		t.recs[0] = Record{} // release attr map for GC before sliding
		t.recs = t.recs[1:]
	}
	advanced := false
	switch rec.Op {
	case graph.OpTxBegin:
		t.inTx = true
	case graph.OpTxCommit, graph.OpTxRollback:
		t.inTx = false
		t.committed = rec.Seq
		advanced = true
	default:
		if !t.inTx {
			t.committed = rec.Seq
			advanced = true
		}
	}
	var wake chan struct{}
	if advanced {
		wake, t.notify = t.notify, make(chan struct{})
	}
	t.mu.Unlock()
	if wake != nil {
		close(wake)
	}
}

// collect returns up to max records with seq in [from, committed].
// ok is false when the buffer no longer reaches back to from — the
// caller must fall back to the disk scan or a snapshot. A from past
// the committed watermark returns (nil, true): nothing to ship yet,
// wait on Notify.
func (t *replTail) collect(from uint64, max int) (out []Record, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from > t.committed {
		return nil, true
	}
	if len(t.recs) == 0 || t.recs[0].Seq > from {
		return nil, false
	}
	i := int(from - t.recs[0].Seq)
	for ; i < len(t.recs) && len(out) < max; i++ {
		if t.recs[i].Seq > t.committed {
			break
		}
		out = append(out, t.recs[i])
	}
	return out, true
}

func (t *replTail) committedSeq() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}

func (t *replTail) notifyCh() <-chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notify
}

// --- DB surface consumed by internal/replication ---

// CommittedSeq returns the sequence number of the last WAL record at a
// transaction-group boundary: the highest record a replication stream
// may ship, and the leader-side "read your writes" watermark.
func (db *DB) CommittedSeq() uint64 { return db.tail.committedSeq() }

// TailNotify returns a channel closed the next time the committed
// watermark advances. Callers re-fetch the channel after each wake.
func (db *DB) TailNotify() <-chan struct{} { return db.tail.notifyCh() }

// TailSince returns up to max committed WAL records with seq >= from
// out of the in-memory tail. ok reports availability: false means the
// buffer has evicted from (try TailFromDisk); (nil, true) means from is
// past the committed watermark — nothing to ship yet.
func (db *DB) TailSince(from uint64, max int) ([]Record, bool) {
	return db.tail.collect(from, max)
}

// TailFromDisk scans the WAL file for committed records with
// seq >= from: the catch-up path for a follower that reaches further
// back than the in-memory tail, typically after a leader restart. ok
// is false when the file does not reach back to from (the records were
// truncated by a checkpoint) — the follower needs a snapshot transfer.
// Records past the last transaction-group boundary are withheld, like
// the in-memory tail. The scan tolerates a concurrent truncation: a
// torn read ends the scan at the damage and ships the shorter batch;
// the follower's next request re-resolves.
func (db *DB) TailFromDisk(from uint64) ([]Record, bool, error) {
	if from == 0 {
		from = 1
	}
	f, err := os.Open(filepath.Join(db.dir, walFile))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("storage: tail scan: %w", err)
	}
	defer f.Close()
	sc := newWALScanner(f)
	var (
		rec            Record
		out            []Record
		first          uint64
		shippedThrough int // len(out) at the last group boundary
		inTx           bool
	)
	for sc.next(&rec) {
		if first == 0 {
			first = rec.Seq
		}
		if rec.Seq >= from {
			out = append(out, rec)
		}
		switch rec.Op {
		case graph.OpTxBegin:
			inTx = true
		case graph.OpTxCommit, graph.OpTxRollback:
			inTx = false
			shippedThrough = len(out)
		default:
			if !inTx {
				shippedThrough = len(out)
			}
		}
	}
	out = out[:shippedThrough]
	if first == 0 || first > from {
		// Empty log, or its oldest surviving record is already past
		// from: the gap is only recoverable via snapshot.
		return nil, false, nil
	}
	return out, true, nil
}

// WriteSnapshotTo streams a binary snapshot of the current store —
// byte-compatible with the snapshot.skg file a checkpoint writes — to
// w, returning the covering WAL sequence number. The store is quiesced
// for the duration (writers wait; snapshot reads proceed), so the
// state and its covering seq are captured at a transaction boundary.
// This is the leader side of a replication catch-up transfer.
func (db *DB) WriteSnapshotTo(w io.Writer) (uint64, error) {
	var seq uint64
	err := db.store.Quiesce(func() error {
		return db.store.SaveBinaryWithHeader(w, func(hw io.Writer) error {
			seq, _ = db.wal.state()
			return writeBinSnapHeader(hw, seq)
		})
	})
	return seq, err
}

// HasState reports whether dir already holds durable state (a snapshot
// or a WAL): a replica data directory with state resumes from it
// instead of re-bootstrapping.
func HasState(dir string) bool {
	for _, name := range []string{snapshotBinFile, snapshotFile, walFile} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err == nil && fi.Size() > 0 {
			return true
		}
	}
	return false
}

// InstallSnapshot writes the snapshot stream r (the WriteSnapshotTo /
// snapshot.skg format) into dir atomically: temp file, fsync, rename.
// The directory must not be open as a DB (Open takes the flock). A
// subsequent Open recovers from the installed snapshot; a crash
// mid-install leaves only a .tmp file Open ignores and removes.
func InstallSnapshot(dir string, r io.Reader) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	dst := filepath.Join(dir, snapshotBinFile)
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := io.Copy(bw, r); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	// Verify the header before renaming into place: a truncated or
	// foreign stream must not shadow a good directory.
	if _, _, err := binSnapshotSeq(tmp); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: install snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}
