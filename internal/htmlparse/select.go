package htmlparse

import "strings"

// Selector matches DOM elements. The supported grammar is the practical
// subset source parsers need:
//
//	tag            element name
//	#id            id attribute
//	.class         class list member
//	[attr]         attribute present
//	[attr=value]   attribute equals value
//	tag.class#id[attr=v]   conjunction on one element
//	"a b"          descendant combinator
//	"a > b"        child combinator
type Selector struct {
	steps []selStep
}

type selStep struct {
	simple selSimple
	child  bool // true: must be a direct child of the previous step's match
}

type selSimple struct {
	tag     string
	id      string
	classes []string
	attrs   [][2]string // name, value; value "" with presence-only flag below
	attrHas []string
}

// Compile parses a selector string. Invalid syntax yields a selector that
// matches nothing (lenient, like the rest of the package).
func Compile(sel string) Selector {
	var s Selector
	fields := tokenizeSelector(sel)
	child := false
	for _, f := range fields {
		if f == ">" {
			child = true
			continue
		}
		s.steps = append(s.steps, selStep{simple: parseSimple(f), child: child})
		child = false
	}
	return s
}

func tokenizeSelector(sel string) []string {
	sel = strings.TrimSpace(sel)
	var out []string
	cur := strings.Builder{}
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range sel {
		switch {
		case r == '[':
			depth++
			cur.WriteRune(r)
		case r == ']':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			flush()
		case r == '>' && depth == 0:
			flush()
			out = append(out, ">")
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

func parseSimple(s string) selSimple {
	var out selSimple
	i := 0
	readName := func() string {
		st := i
		for i < len(s) && s[i] != '.' && s[i] != '#' && s[i] != '[' {
			i++
		}
		return s[st:i]
	}
	if i < len(s) && s[i] != '.' && s[i] != '#' && s[i] != '[' {
		out.tag = strings.ToLower(readName())
	}
	for i < len(s) {
		switch s[i] {
		case '.':
			i++
			out.classes = append(out.classes, readName())
		case '#':
			i++
			out.id = readName()
		case '[':
			end := strings.IndexByte(s[i:], ']')
			if end < 0 {
				return selSimple{tag: "\x00nomatch"}
			}
			body := s[i+1 : i+end]
			i += end + 1
			if eq := strings.IndexByte(body, '='); eq >= 0 {
				val := strings.Trim(body[eq+1:], `"'`)
				out.attrs = append(out.attrs, [2]string{strings.ToLower(body[:eq]), val})
			} else {
				out.attrHas = append(out.attrHas, strings.ToLower(body))
			}
		default:
			return selSimple{tag: "\x00nomatch"}
		}
	}
	return out
}

func (ss selSimple) matches(n *Node) bool {
	if n.Type != ElementNode {
		return false
	}
	if ss.tag != "" && ss.tag != "*" && n.Tag != ss.tag {
		return false
	}
	if ss.id != "" && n.ID() != ss.id {
		return false
	}
	for _, c := range ss.classes {
		if !n.HasClass(c) {
			return false
		}
	}
	for _, av := range ss.attrs {
		v, ok := n.Attr(av[0])
		if !ok || v != av[1] {
			return false
		}
	}
	for _, a := range ss.attrHas {
		if _, ok := n.Attr(a); !ok {
			return false
		}
	}
	return true
}

// FindAll returns all elements in the subtree matching the selector string,
// in document order.
func (n *Node) FindAll(selector string) []*Node {
	sel := Compile(selector)
	if len(sel.steps) == 0 {
		return nil
	}
	var out []*Node
	n.findRec(sel.steps, &out)
	// Nested intermediate matches can yield duplicates; keep first occurrence.
	seen := make(map[*Node]bool, len(out))
	dedup := out[:0]
	for _, m := range out {
		if !seen[m] {
			seen[m] = true
			dedup = append(dedup, m)
		}
	}
	return dedup
}

// Find returns the first match or nil.
func (n *Node) Find(selector string) *Node {
	all := n.FindAll(selector)
	if len(all) == 0 {
		return nil
	}
	return all[0]
}

func (n *Node) findRec(steps []selStep, out *[]*Node) {
	step := steps[0]
	var visit func(node *Node, allowDeep bool)
	visit = func(node *Node, allowDeep bool) {
		for _, c := range node.Children {
			if step.simple.matches(c) {
				if len(steps) == 1 {
					*out = append(*out, c)
					// matches may nest; keep descending for descendant steps
				} else {
					c.findRec(steps[1:], out)
				}
			}
			if allowDeep || !step.child {
				visit(c, allowDeep)
			}
		}
	}
	if step.child {
		visit(n, false)
	} else {
		// Descendant: search the whole subtree.
		var deep func(node *Node)
		deep = func(node *Node) {
			for _, c := range node.Children {
				if step.simple.matches(c) {
					if len(steps) == 1 {
						*out = append(*out, c)
					} else {
						c.findRec(steps[1:], out)
					}
				}
				deep(c)
			}
		}
		deep(n)
	}
}
