package htmlparse

import "strings"

// NodeType classifies a DOM node.
type NodeType int

const (
	ElementNode NodeType = iota
	TextNode
	CommentNode
	DocumentNode
)

// Node is one node of the lenient DOM tree.
type Node struct {
	Type     NodeType
	Tag      string // element tag name (lowercase), empty for text
	Text     string // text content for TextNode/CommentNode
	Attrs    map[string]string
	Parent   *Node
	Children []*Node
}

// autoCloseBefore maps a tag to the set of open tags it implicitly closes
// (lenient parsing of real-world HTML: <li> closes an open <li>, etc.).
var autoCloseBefore = map[string]map[string]bool{
	"li":     {"li": true},
	"tr":     {"tr": true, "td": true, "th": true},
	"td":     {"td": true, "th": true},
	"th":     {"td": true, "th": true},
	"p":      {"p": true},
	"option": {"option": true},
	"dt":     {"dt": true, "dd": true},
	"dd":     {"dt": true, "dd": true},
}

// Parse builds a DOM tree from HTML. It never fails: unclosed tags are
// closed at end of input and stray close tags are ignored.
func Parse(html string) *Node {
	doc := &Node{Type: DocumentNode, Tag: "#document"}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }
	for _, tok := range Tokenize(html) {
		switch tok.Type {
		case TokenText:
			if strings.TrimSpace(tok.Data) == "" {
				continue
			}
			n := &Node{Type: TextNode, Text: tok.Data, Parent: top()}
			top().Children = append(top().Children, n)
		case TokenComment:
			n := &Node{Type: CommentNode, Text: tok.Data, Parent: top()}
			top().Children = append(top().Children, n)
		case TokenStartTag, TokenSelfClosing:
			if closers, ok := autoCloseBefore[tok.Data]; ok {
				for len(stack) > 1 && closers[top().Tag] {
					stack = stack[:len(stack)-1]
				}
			}
			n := &Node{Type: ElementNode, Tag: tok.Data, Attrs: tok.Attrs, Parent: top()}
			top().Children = append(top().Children, n)
			if tok.Type == TokenStartTag {
				stack = append(stack, n)
			}
		case TokenEndTag:
			// Pop to the matching open tag if one exists; ignore otherwise.
			for k := len(stack) - 1; k >= 1; k-- {
				if stack[k].Tag == tok.Data {
					stack = stack[:k]
					break
				}
			}
		case TokenDoctype:
			// ignored
		}
	}
	return doc
}

// Attr returns the attribute value and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	if n.Attrs == nil {
		return "", false
	}
	v, ok := n.Attrs[strings.ToLower(name)]
	return v, ok
}

// ID returns the element id attribute ("" if absent).
func (n *Node) ID() string { v, _ := n.Attr("id"); return v }

// HasClass reports whether the element's class list contains c.
func (n *Node) HasClass(c string) bool {
	v, ok := n.Attr("class")
	if !ok {
		return false
	}
	for _, f := range strings.Fields(v) {
		if f == c {
			return true
		}
	}
	return false
}

// InnerText returns the concatenated text of the subtree, with whitespace
// collapsed and block elements separated by newlines.
func (n *Node) InnerText() string {
	var b strings.Builder
	n.writeText(&b)
	return strings.TrimSpace(collapseSpace(b.String()))
}

var blockTags = map[string]bool{
	"p": true, "div": true, "li": true, "tr": true, "br": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"table": true, "ul": true, "ol": true, "section": true, "article": true,
	"header": true, "footer": true, "pre": true, "blockquote": true,
}

var skipTextTags = map[string]bool{"script": true, "style": true}

func (n *Node) writeText(b *strings.Builder) {
	switch n.Type {
	case TextNode:
		b.WriteString(n.Text)
	case ElementNode:
		if skipTextTags[n.Tag] {
			return
		}
		if blockTags[n.Tag] {
			b.WriteByte('\n')
		}
		for _, c := range n.Children {
			c.writeText(b)
		}
		if blockTags[n.Tag] {
			b.WriteByte('\n')
		}
	default:
		for _, c := range n.Children {
			c.writeText(b)
		}
	}
}

func collapseSpace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := false
	lastNL := false
	for _, r := range s {
		switch r {
		case '\n':
			if !lastNL {
				b.WriteByte('\n')
			}
			lastNL = true
			lastSpace = true
		case ' ', '\t', '\r':
			if !lastSpace {
				b.WriteByte(' ')
			}
			lastSpace = true
		default:
			b.WriteRune(r)
			lastSpace = false
			lastNL = false
		}
	}
	return b.String()
}

// Walk visits every node in the subtree in document order. Returning false
// from fn prunes the node's children.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}
