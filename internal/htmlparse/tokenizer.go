// Package htmlparse implements the HTML substrate SecurityKG's
// source-dependent parsers need: a tokenizer, a lenient DOM tree builder,
// a small CSS-like selector engine, and text extraction. The paper's
// parsers "take advantage of prior knowledge of the source website
// structure and extract keys and values from report files" — that requires
// structured access to tags, attributes, and text.
package htmlparse

import "strings"

// TokenType classifies a lexical HTML token.
type TokenType int

const (
	TokenText TokenType = iota
	TokenStartTag
	TokenEndTag
	TokenSelfClosing
	TokenComment
	TokenDoctype
)

// Token is one lexical token from the HTML input.
type Token struct {
	Type  TokenType
	Data  string            // tag name (lowercased) or text content
	Attrs map[string]string // attributes for start/self-closing tags
}

// rawTextTags are elements whose content is raw text until the matching
// close tag (no nested markup).
var rawTextTags = map[string]bool{"script": true, "style": true, "textarea": true, "title": true}

// voidTags never have closing tags in HTML.
var voidTags = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// Tokenize lexes HTML into a token stream. It is deliberately lenient:
// malformed constructs degrade to text rather than failing, because real
// OSCTI pages are messy.
func Tokenize(html string) []Token {
	var toks []Token
	i, n := 0, len(html)
	emitText := func(s string) {
		if s != "" {
			toks = append(toks, Token{Type: TokenText, Data: DecodeEntities(s)})
		}
	}
	for i < n {
		lt := strings.IndexByte(html[i:], '<')
		if lt < 0 {
			emitText(html[i:])
			break
		}
		emitText(html[i : i+lt])
		i += lt
		if i+1 >= n {
			emitText(html[i:])
			break
		}
		switch {
		case strings.HasPrefix(html[i:], "<!--"):
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				toks = append(toks, Token{Type: TokenComment, Data: html[i+4:]})
				i = n
			} else {
				toks = append(toks, Token{Type: TokenComment, Data: html[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case html[i+1] == '!' || html[i+1] == '?':
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				i = n
			} else {
				toks = append(toks, Token{Type: TokenDoctype, Data: html[i+2 : i+end]})
				i += end + 1
			}
		case html[i+1] == '/':
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				emitText(html[i:])
				i = n
			} else {
				name := strings.ToLower(strings.TrimSpace(html[i+2 : i+end]))
				toks = append(toks, Token{Type: TokenEndTag, Data: name})
				i += end + 1
			}
		case isTagNameStart(html[i+1]):
			tok, next := lexStartTag(html, i)
			toks = append(toks, tok)
			i = next
			if tok.Type == TokenStartTag && rawTextTags[tok.Data] {
				// Consume raw text until the matching close tag.
				closeSeq := "</" + tok.Data
				idx := indexFold(html[i:], closeSeq)
				if idx < 0 {
					emitText(html[i:])
					i = n
					break
				}
				if idx > 0 {
					toks = append(toks, Token{Type: TokenText, Data: html[i : i+idx]})
				}
				gt := strings.IndexByte(html[i+idx:], '>')
				toks = append(toks, Token{Type: TokenEndTag, Data: tok.Data})
				if gt < 0 {
					i = n
				} else {
					i += idx + gt + 1
				}
			}
		default:
			// A lone '<' that starts no tag: literal text.
			emitText("<")
			i++
		}
	}
	return toks
}

func isTagNameStart(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

// lexStartTag parses "<name attr=val ...>" starting at i (html[i]=='<').
func lexStartTag(html string, i int) (Token, int) {
	n := len(html)
	j := i + 1
	for j < n && (isTagNameStart(html[j]) || html[j] >= '0' && html[j] <= '9') {
		j++
	}
	name := strings.ToLower(html[i+1 : j])
	attrs := map[string]string{}
	selfClose := false
	for j < n {
		for j < n && (html[j] == ' ' || html[j] == '\t' || html[j] == '\n' || html[j] == '\r') {
			j++
		}
		if j >= n {
			break
		}
		if html[j] == '>' {
			j++
			break
		}
		if html[j] == '/' {
			selfClose = true
			j++
			continue
		}
		// Attribute name.
		as := j
		for j < n && html[j] != '=' && html[j] != '>' && html[j] != ' ' &&
			html[j] != '\t' && html[j] != '\n' && html[j] != '/' {
			j++
		}
		aname := strings.ToLower(html[as:j])
		aval := ""
		if j < n && html[j] == '=' {
			j++
			if j < n && (html[j] == '"' || html[j] == '\'') {
				q := html[j]
				j++
				vs := j
				for j < n && html[j] != q {
					j++
				}
				aval = html[vs:j]
				if j < n {
					j++
				}
			} else {
				vs := j
				for j < n && html[j] != ' ' && html[j] != '>' && html[j] != '\t' && html[j] != '\n' {
					j++
				}
				aval = html[vs:j]
			}
		}
		if aname != "" {
			attrs[aname] = DecodeEntities(aval)
		}
	}
	tt := TokenStartTag
	if selfClose || voidTags[name] {
		tt = TokenSelfClosing
	}
	return Token{Type: tt, Data: name, Attrs: attrs}, j
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	ls, ln := strings.ToLower(s), strings.ToLower(needle)
	return strings.Index(ls, ln)
}

var entityTable = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "copy": "©", "reg": "®", "trade": "™", "hellip": "…",
	"mdash": "—", "ndash": "–", "lsquo": "'", "rsquo": "'",
	"ldquo": "“", "rdquo": "”", "bull": "•", "middot": "·",
}

// DecodeEntities resolves named and numeric character references.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte('&')
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if strings.HasPrefix(ent, "#") {
			var code int
			ok := true
			if len(ent) > 1 && (ent[1] == 'x' || ent[1] == 'X') {
				for _, c := range ent[2:] {
					switch {
					case c >= '0' && c <= '9':
						code = code*16 + int(c-'0')
					case c >= 'a' && c <= 'f':
						code = code*16 + int(c-'a'+10)
					case c >= 'A' && c <= 'F':
						code = code*16 + int(c-'A'+10)
					default:
						ok = false
					}
				}
			} else {
				for _, c := range ent[1:] {
					if c < '0' || c > '9' {
						ok = false
						break
					}
					code = code*10 + int(c-'0')
				}
			}
			if ok && code > 0 && code <= 0x10FFFF {
				b.WriteRune(rune(code))
				i += semi + 1
				continue
			}
		}
		if rep, ok := entityTable[ent]; ok {
			b.WriteString(rep)
			i += semi + 1
			continue
		}
		b.WriteByte('&')
		i++
	}
	return b.String()
}
