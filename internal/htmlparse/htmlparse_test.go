package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePage = `<!DOCTYPE html>
<html>
<head><title>Threat Report: WannaCry</title>
<style>body { color: red }</style>
<script>var x = "<div>not a tag</div>";</script>
</head>
<body>
<div id="report" class="report malware-report">
  <h1 class="title">WannaCry Analysis</h1>
  <table class="meta">
    <tr><td class="key">Vendor</td><td class="val">AcmeSec</td></tr>
    <tr><td class="key">Date</td><td class="val">2021-02-26</td></tr>
  </table>
  <ul class="iocs">
    <li>10.0.0.1
    <li>bad.example.com
  </ul>
  <p>The worm spreads &amp; encrypts files.</p>
  <!-- hidden comment -->
  <img src="x.png">
  <a href="https://mitre.org">reference</a>
</div>
</body>
</html>`

func TestTokenizeBasicStructure(t *testing.T) {
	toks := Tokenize("<p class='x'>hi</p>")
	if len(toks) != 3 {
		t.Fatalf("expected 3 tokens, got %+v", toks)
	}
	if toks[0].Type != TokenStartTag || toks[0].Data != "p" || toks[0].Attrs["class"] != "x" {
		t.Errorf("start tag wrong: %+v", toks[0])
	}
	if toks[1].Type != TokenText || toks[1].Data != "hi" {
		t.Errorf("text wrong: %+v", toks[1])
	}
	if toks[2].Type != TokenEndTag || toks[2].Data != "p" {
		t.Errorf("end tag wrong: %+v", toks[2])
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a<b) { x = "</div>"; }</script><p>after</p>`)
	// Script content must be one raw text token; the "<b)" must not lex a tag.
	var scriptText string
	for i, tk := range toks {
		if tk.Type == TokenStartTag && tk.Data == "script" && i+1 < len(toks) {
			scriptText = toks[i+1].Data
		}
	}
	if !strings.Contains(scriptText, "a<b") {
		t.Errorf("script raw text mangled: %q (tokens %+v)", scriptText, toks)
	}
}

func TestTokenizeVoidAndSelfClosing(t *testing.T) {
	toks := Tokenize(`<img src="a.png"><br/><input type=text>`)
	for _, tk := range toks {
		if tk.Type != TokenSelfClosing {
			t.Errorf("expected self-closing, got %+v", tk)
		}
	}
}

func TestTokenizeUnquotedAndSingleQuotedAttrs(t *testing.T) {
	toks := Tokenize(`<a href=/x/y title='hello world' data-k="v">z</a>`)
	at := toks[0].Attrs
	if at["href"] != "/x/y" || at["title"] != "hello world" || at["data-k"] != "v" {
		t.Errorf("attrs wrong: %+v", at)
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":       "a & b",
		"&lt;tag&gt;":     "<tag>",
		"&#65;&#x42;":     "AB",
		"&unknown; stays": "&unknown; stays",
		"no entities":     "no entities",
		"&quot;q&quot;":   `"q"`,
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseTreeShape(t *testing.T) {
	doc := Parse("<div><p>one</p><p>two</p></div>")
	div := doc.Find("div")
	if div == nil {
		t.Fatal("div not found")
	}
	if len(div.Children) != 2 {
		t.Fatalf("div should have 2 children, got %d", len(div.Children))
	}
	if div.Children[0].Tag != "p" || div.Children[1].Tag != "p" {
		t.Errorf("children wrong: %+v", div.Children)
	}
	if div.Children[0].Parent != div {
		t.Error("parent pointer wrong")
	}
}

func TestParseAutoClosesLiAndTr(t *testing.T) {
	doc := Parse("<ul><li>a<li>b<li>c</ul>")
	lis := doc.FindAll("ul li")
	if len(lis) != 3 {
		t.Fatalf("expected 3 li, got %d", len(lis))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got := lis[i].InnerText(); got != want {
			t.Errorf("li[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestParseIgnoresStrayCloseTags(t *testing.T) {
	doc := Parse("<div></span><p>ok</p></div>")
	if p := doc.Find("div p"); p == nil || p.InnerText() != "ok" {
		t.Errorf("stray close tag broke parse: %+v", doc)
	}
}

func TestParseUnclosedTagsClosedAtEOF(t *testing.T) {
	doc := Parse("<div><p>dangling")
	if p := doc.Find("div p"); p == nil || p.InnerText() != "dangling" {
		t.Error("unclosed tags not recovered")
	}
}

func TestSelectorsOnSamplePage(t *testing.T) {
	doc := Parse(samplePage)

	if n := doc.Find("#report"); n == nil || n.Tag != "div" {
		t.Fatal("#report not found")
	}
	if n := doc.Find("div.malware-report"); n == nil {
		t.Error("class selector failed")
	}
	if n := doc.Find("h1.title"); n == nil || n.InnerText() != "WannaCry Analysis" {
		t.Errorf("h1.title wrong: %v", n)
	}
	keys := doc.FindAll("table.meta td.key")
	vals := doc.FindAll("table.meta td.val")
	if len(keys) != 2 || len(vals) != 2 {
		t.Fatalf("table cells: %d keys %d vals", len(keys), len(vals))
	}
	if keys[0].InnerText() != "Vendor" || vals[0].InnerText() != "AcmeSec" {
		t.Errorf("first row wrong: %q=%q", keys[0].InnerText(), vals[0].InnerText())
	}
	if links := doc.FindAll("a[href]"); len(links) != 1 {
		t.Errorf("attr-presence selector: %d links", len(links))
	}
	if n := doc.Find(`a[href=https://mitre.org]`); n == nil {
		t.Error("attr-equals selector failed")
	}
	if lis := doc.FindAll("ul.iocs > li"); len(lis) != 2 {
		t.Errorf("child combinator: %d li", len(lis))
	}
}

func TestChildCombinatorStrictness(t *testing.T) {
	doc := Parse("<div><section><p>deep</p></section><p>shallow</p></div>")
	direct := doc.FindAll("div > p")
	if len(direct) != 1 || direct[0].InnerText() != "shallow" {
		t.Errorf("child combinator matched wrong nodes: %d", len(direct))
	}
	desc := doc.FindAll("div p")
	if len(desc) != 2 {
		t.Errorf("descendant combinator should match 2, got %d", len(desc))
	}
}

func TestInnerTextSkipsScriptStyleAndDecodes(t *testing.T) {
	doc := Parse(samplePage)
	text := doc.InnerText()
	if strings.Contains(text, "color: red") || strings.Contains(text, "var x") {
		t.Error("InnerText leaked script/style content")
	}
	if !strings.Contains(text, "spreads & encrypts") {
		t.Errorf("entities not decoded in text: %q", text)
	}
	if strings.Contains(text, "hidden comment") {
		t.Error("InnerText leaked comment")
	}
}

func TestInnerTextBlockSeparation(t *testing.T) {
	doc := Parse("<div><p>one</p><p>two</p></div>")
	text := doc.InnerText()
	if !strings.Contains(text, "\n") {
		t.Errorf("block elements should be newline separated: %q", text)
	}
}

func TestWalkVisitsAllElements(t *testing.T) {
	doc := Parse(samplePage)
	count := 0
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			count++
		}
		return true
	})
	if count < 15 {
		t.Errorf("expected at least 15 elements, got %d", count)
	}
}

func TestWalkPrune(t *testing.T) {
	doc := Parse("<div><span>a</span></div><p>b</p>")
	var tags []string
	doc.Walk(func(n *Node) bool {
		if n.Type == ElementNode {
			tags = append(tags, n.Tag)
			return n.Tag != "div" // prune div's subtree
		}
		return true
	})
	for _, tg := range tags {
		if tg == "span" {
			t.Error("pruned subtree was visited")
		}
	}
}

func TestFindAllNoDuplicatesOnNestedMatch(t *testing.T) {
	doc := Parse("<div><div><p>x</p></div></div>")
	ps := doc.FindAll("div p")
	if len(ps) != 1 {
		t.Errorf("expected 1 unique p, got %d", len(ps))
	}
}

// Property: Parse never panics and InnerText never contains '<' from tags
// for inputs assembled from structural fragments.
func TestParseRobustnessQuick(t *testing.T) {
	frags := []string{"<div>", "</div>", "<p class='a'>", "text & more",
		"<img src=x>", "</span>", "<script>x<y</script>", "<!-- c -->",
		"<a href=", "'>", "<", ">", "&amp;", "<table><tr><td>z"}
	f := func(idx []uint8) bool {
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteString(frags[int(i)%len(frags)])
		}
		doc := Parse(sb.String())
		_ = doc.InnerText()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
