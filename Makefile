GO ?= go

.PHONY: build test vet bench bench-storage cover fuzz crash-test replication-test soak-test

build:
	$(GO) build ./...

# test runs static analysis first, then the full suite under the race
# detector (the graph store and query engine are concurrency-facing;
# the suite includes the join-strategy differential and golden-plan
# tests, and the parallel-scan tests force multi-worker partitions so
# the concurrent scan path is race-checked even on one core). The
# allocation-regression guards (zero-alloc CSR incidence iteration,
# zero-alloc binary WAL append, zero-cost disabled ANALYZE
# instrumentation on the warm expand path) are gated //go:build !race —
# the race detector inflates AllocsPerRun — so a plain-build pass runs
# them.
# The final pass re-runs the transaction schedule harness (scripted +
# randomized interleavings against the snapshot-isolation oracle) and
# the parallel reader stress test under -race with fresh counts, so the
# MVCC visibility paths get a dedicated concurrency shakedown beyond
# the cached full-suite run, followed by the leader/follower
# replication integration pass (replication-test) and a short-profile
# live-ingest soak (soak-test with -short: fewer writers/batches, same
# assertions — divergence, lost writes, 429 discipline, metrics under
# scrape).
test: vet
	$(GO) test -race ./...
	$(GO) test -run 'Allocs' ./internal/graph/ ./internal/storage/ ./internal/cypher/
	$(GO) test -race -count=2 -run 'TestSchedule|TestConcurrentReadersSeeAtomicWrites|TestTx' ./internal/cypher/
	$(MAKE) replication-test
	$(MAKE) soak-test SOAKFLAGS=-short

# replication-test runs the leader/follower integration suite under
# -race with fresh counts: two-node convergence (Save byte-equality
# across snapshot catch-up, live tail, transaction groups), follower
# and leader restarts mid-stream, the snapshot-required/stale path,
# the read-your-writes e2e over real HTTP servers, and the follower
# SIGKILL crash harness (TestFollowerCrashKill re-randomizes its kill
# timing per count).
replication-test:
	$(GO) test -race ./internal/replication/ -count=2 -v -run 'TestReplicate|TestFollower|TestLeader|TestSnapshot|TestTwoNode|TestBootstrap|TestFrame'

# soak-test drives live ingest under load over real HTTP servers: N
# writer clients batch-ingesting via UNWIND (plus a hog writer whose
# oversized batches force genuine backpressure overlap) against a
# leader with a tailing follower, while reader clients stream reads
# from both nodes (read-your-writes via min_seq on the replica) and
# scrapers hit /metrics on both throughout — all under -race. Passes
# only with byte-identical leader/follower stores, zero lost writes,
# at least one exercised-and-retried 429, drained lag and a zeroed
# in-flight gauge. `make test` runs the -short profile; run this
# target directly for the full one.
SOAKFLAGS ?=
soak-test:
	$(GO) test -race ./internal/replication/ ./internal/server/ -count=1 -v $(SOAKFLAGS) -run 'TestSoak|TestIngestBackpressure|TestSweep'

vet:
	$(GO) vet ./...

# bench runs the Cypher engine benchmarks (planned vs legacy, index
# on/off, variable-length paths, MERGE write path, hash join vs nested
# loop, bidirectional expand, parallel scans) plus the durability
# benchmarks (WAL append throughput, cold-start recovery), the MVCC
# contention benchmark (ConcurrentReadersDuringWrites: snapshot reads
# vs an exclusive global lock), and the replication benchmarks
# (follower catch-up records/s over the HTTP stream, steady-state lag
# behind a write burst), and the EXPLAIN ANALYZE instrumentation
# overhead arm (analyze-off must stay within noise of the prepared hot
# path; analyze-on prices per-operator profiling), and records the raw
# `go test -json` event stream in BENCH_cypher.json so the perf
# trajectory is diffable across PRs.
bench:
	$(GO) test -run '^$$' -bench 'Cypher|WAL|ConcurrentReaders|Replication' -benchmem -benchtime 50x . -json | tee BENCH_cypher.json | \
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true

# bench-storage runs the binary-vs-JSON storage codec matrix (WAL
# append, 20k-record cold-start replay, snapshot save/load) and appends
# the event stream to BENCH_cypher.json so codec regressions are
# diffable alongside the engine numbers. The PR 6 acceptance bar lives
# here: StorageCodecReplay/binary-20k must stay >= 2x faster than
# /json-20k.
bench-storage:
	$(GO) test -run '^$$' -bench 'StorageCodec' -benchmem -benchtime 20x . -json | tee -a BENCH_cypher.json | \
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true

# crash-test hammers the durability subsystem: a child writer process
# is SIGKILLed at random moments and recovery must reproduce a prefix
# fold of its mutation stream byte-for-byte (TestCrashProcessKill),
# plus the kill-at-every-byte-offset torn-tail property
# (TestTornTailEveryOffset). The Tx variants re-run both with a
# transactional writer: recovery must replay exactly the committed
# groups and discard dangling ones. -count re-randomizes kill timing.
crash-test:
	$(GO) test ./internal/storage -run 'TestCrashProcessKill|TestTornTailEveryOffset' -count=3 -v

# cover profiles the query engine and the exploration API server, and
# fails the build when either package's statement coverage drops below
# its floor.
COVER_FLOOR ?= 85
COVER_FLOOR_SERVER ?= 87
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./internal/cypher/
	@$(GO) tool cover -func=cover.out | sort -t: -k2 -n | awk '$$3+0 < 60 {print "  low:", $$0}'
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < floor+0) { printf "internal/cypher coverage %.1f%% is below the %s%% floor\n", t, floor; exit 1 } \
		else { printf "internal/cypher coverage %.1f%% (floor %s%%)\n", t, floor } }'
	$(GO) test -coverprofile=cover_server.out -covermode=atomic ./internal/server/
	@total=$$($(GO) tool cover -func=cover_server.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR_SERVER) 'BEGIN { \
		if (t+0 < floor+0) { printf "internal/server coverage %.1f%% is below the %s%% floor\n", t, floor; exit 1 } \
		else { printf "internal/server coverage %.1f%% (floor %s%%)\n", t, floor } }'

# fuzz exercises the parser, engine and WAL-recovery fuzz targets for
# 30s each (parser must never panic; engines must error, not crash;
# recovery must survive arbitrary log bytes and stay writable).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/cypher -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/cypher -fuzz FuzzEngineQuery -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/storage -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) -run '^$$'
