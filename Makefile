GO ?= go

.PHONY: build test vet bench cover fuzz

build:
	$(GO) build ./...

# test runs static analysis first, then the full suite under the race
# detector (the graph store and query engine are concurrency-facing).
test: vet
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the Cypher engine benchmarks (planned vs legacy, index
# on/off, variable-length paths) and records the raw `go test -json`
# event stream in BENCH_cypher.json so the perf trajectory is diffable
# across PRs.
bench:
	$(GO) test -run '^$$' -bench 'Cypher' -benchmem -benchtime 50x . -json | tee BENCH_cypher.json | \
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true

# cover profiles the query engine and the exploration API server, and
# fails the build when either package's statement coverage drops below
# its floor.
COVER_FLOOR ?= 80
COVER_FLOOR_SERVER ?= 85
cover:
	$(GO) test -coverprofile=cover.out -covermode=atomic ./internal/cypher/
	@$(GO) tool cover -func=cover.out | sort -t: -k2 -n | awk '$$3+0 < 60 {print "  low:", $$0}'
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR) 'BEGIN { \
		if (t+0 < floor+0) { printf "internal/cypher coverage %.1f%% is below the %s%% floor\n", t, floor; exit 1 } \
		else { printf "internal/cypher coverage %.1f%% (floor %s%%)\n", t, floor } }'
	$(GO) test -coverprofile=cover_server.out -covermode=atomic ./internal/server/
	@total=$$($(GO) tool cover -func=cover_server.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t=$$total -v floor=$(COVER_FLOOR_SERVER) 'BEGIN { \
		if (t+0 < floor+0) { printf "internal/server coverage %.1f%% is below the %s%% floor\n", t, floor; exit 1 } \
		else { printf "internal/server coverage %.1f%% (floor %s%%)\n", t, floor } }'

# fuzz exercises the parser and engine fuzz targets for 30s each
# (parser must never panic; engine must error, not crash).
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/cypher -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$'
	$(GO) test ./internal/cypher -fuzz FuzzEngineQuery -fuzztime $(FUZZTIME) -run '^$$'
