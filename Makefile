GO ?= go

.PHONY: build test vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the Cypher engine benchmarks (planned vs legacy, index
# on/off) and records the raw `go test -json` event stream in
# BENCH_cypher.json so the perf trajectory is diffable across PRs.
bench:
	$(GO) test -run '^$$' -bench 'Cypher' -benchmem -benchtime 50x . -json | tee BENCH_cypher.json | \
		grep -o '"Output":"Benchmark[^"]*' | sed 's/"Output":"//; s/\\t/\t/g; s/\\n//' || true
