package securitykg

// Cross-module integration tests: the full lifecycle including persistence,
// the exploration server over real ingested data, and ground-truth recall
// through every stage at once.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"securitykg/internal/fusion"
	"securitykg/internal/graph"
	"securitykg/internal/ontology"
	"securitykg/internal/server"
)

func TestIntegrationLifecyclePersistExploreQuery(t *testing.T) {
	sys, _ := sharedSystem(t)

	// Persist, reload into a second engine, and verify queries agree.
	path := filepath.Join(t.TempDir(), "kg.jsonl")
	if err := sys.SaveGraph(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q := `match (m:Malware)-[:CONNECT]->(x) return m.name, x.name order by m.name limit 10`
	res1, err := sys.Cypher(q)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := &System{Store: loaded, Index: sys.Index}
	_ = sys2
	res2, err := sys.Cypher(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != len(res2.Rows) {
		t.Errorf("query over persisted graph differs: %d vs %d rows",
			len(res1.Rows), len(res2.Rows))
	}

	// Exploration server over the live store.
	srv := httptest.NewServer(server.New(sys.Store, sys.Index))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	var gs graph.Stats
	if err := json.NewDecoder(resp.Body).Decode(&gs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if gs.Nodes != sys.Store.Stats().Nodes {
		t.Errorf("server stats mismatch: %d vs %d", gs.Nodes, sys.Store.Stats().Nodes)
	}
}

func TestIntegrationGroundTruthEntityRecall(t *testing.T) {
	sys, _ := sharedSystem(t)
	// Every report's main malware and the report's IOC set should be
	// findable in the KG (modulo NER noise): measure recall over truth.
	web := sys.Web()
	var totalMal, foundMal, totalIOC, foundIOC int
	for _, spec := range sys.Sources() {
		for i := 0; i < spec.Reports; i++ {
			truth := web.GenerateTruth(spec, i)
			for _, e := range truth.Entities {
				switch {
				case e.Type == ontology.TypeMalware:
					totalMal++
					if sys.Store.FindNode(string(e.Type), e.Name) != nil {
						foundMal++
					}
				case ontology.IsIOCType(e.Type):
					totalIOC++
					if sys.Store.FindNode(string(e.Type), e.Name) != nil {
						foundIOC++
					}
				}
			}
		}
	}
	if r := float64(foundMal) / float64(totalMal); r < 0.8 {
		t.Errorf("malware entity recall %.3f (%d/%d), want >= 0.8", r, foundMal, totalMal)
	}
	if r := float64(foundIOC) / float64(totalIOC); r < 0.95 {
		t.Errorf("IOC recall %.3f (%d/%d), want >= 0.95 (regex-based)", r, foundIOC, totalIOC)
	}
}

func TestIntegrationFusionMergesGeneratedAliases(t *testing.T) {
	sys, _ := sharedSystem(t)
	// Count alias-variant malware in the ground truth, then check fusion
	// actually merged variants whose canonical form also appears.
	web := sys.Web()
	canonicalSeen := map[string]bool{}
	aliasOf := map[string]string{}
	for _, spec := range sys.Sources() {
		for i := 0; i < spec.Reports; i++ {
			truth := web.GenerateTruth(spec, i)
			mal := truth.Entities[0]
			if truth.AliasOf != "" {
				aliasOf[mal.Name] = truth.AliasOf
			} else if !truth.UnseenMalware {
				canonicalSeen[mal.Name] = true
			}
		}
	}
	// Fusion ran in sharedSystem? It did not necessarily; run again —
	// idempotent.
	if _, err := fusion.Fuse(sys.Store, fusion.Options{}); err != nil {
		t.Fatal(err)
	}
	mergeable, merged := 0, 0
	for alias, canon := range aliasOf {
		if !canonicalSeen[canon] {
			continue // canonical never appeared: nothing to merge into
		}
		mergeable++
		if sys.Store.FindNode("Malware", alias) == nil {
			merged++ // alias node folded away
			continue
		}
		// Or the canonical was folded into the alias (degree tie): accept
		// if either node records the other as alias.
		if n := sys.Store.FindNode("Malware", canon); n != nil &&
			strings.Contains(n.Attrs["aliases"], alias) {
			merged++
		} else if n := sys.Store.FindNode("Malware", alias); n != nil &&
			strings.Contains(n.Attrs["aliases"], canon) {
			merged++
		}
	}
	if mergeable == 0 {
		t.Skip("no mergeable aliases in this sample")
	}
	if float64(merged)/float64(mergeable) < 0.7 {
		t.Errorf("fusion merged %d/%d alias pairs", merged, mergeable)
	}
}

func TestIntegrationIncrementalCollectNoDuplicates(t *testing.T) {
	sys, _ := sharedSystem(t)
	before := sys.Store.Stats()
	st, err := sys.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Process.Connected != 0 {
		t.Errorf("incremental re-collect processed %d reports, want 0", st.Process.Connected)
	}
	after := sys.Store.Stats()
	if before.Nodes != after.Nodes || before.Edges != after.Edges {
		t.Errorf("re-collect changed graph: %+v -> %+v", before, after)
	}
}
