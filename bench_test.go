package securitykg

// One testing.B benchmark per experiment in DESIGN.md's index (E1-E13).
// These are CI-scale versions of the tables cmd/skg-bench regenerates;
// EXPERIMENTS.md records full-scale runs.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"securitykg/internal/crawler"
	"securitykg/internal/ctirep"
	"securitykg/internal/cypher"
	"securitykg/internal/experiments"
	"securitykg/internal/fusion"
	"securitykg/internal/graph"
	"securitykg/internal/ioc"
	"securitykg/internal/layout"
	"securitykg/internal/ner"
	"securitykg/internal/search"
	"securitykg/internal/sources"
	"securitykg/internal/storage"
)

// --- E1: crawler throughput ---

func BenchmarkCrawlerThroughput(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			specs := sources.DefaultSources(10)
			reports := 0
			for i := 0; i < b.N; i++ {
				web := sources.NewWeb(int64(i), specs)
				fw := crawler.New(web, specs, crawler.Config{Workers: workers})
				var mu sync.Mutex
				fw.RunOnce(context.Background(), func(ctirep.RawFile) {
					mu.Lock()
					reports++
					mu.Unlock()
				})
			}
			b.ReportMetric(float64(reports)/b.Elapsed().Minutes(), "reports/min")
		})
	}
}

// --- E2: end-to-end ingest at corpus scale (CI-sized) ---

func BenchmarkEndToEndIngest(b *testing.B) {
	sys, err := New(Options{ReportsPerSource: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	reports := int64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys2, err := New(Options{ReportsPerSource: 4, Seed: int64(i + 2)})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := sys2.Collect(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		reports += st.Process.Connected
	}
	_ = sys
	b.ReportMetric(float64(reports)/b.Elapsed().Minutes(), "reports/min")
}

// --- E3: pipeline worker scaling ---

func BenchmarkPipelineWorkers(b *testing.B) {
	specs := sources.DefaultSources(4)[:8]
	web := sources.NewWeb(3, specs)
	var texts []string
	for _, spec := range specs {
		for i := 0; i < 4; i++ {
			texts = append(texts, strings.Join(web.GenerateTruth(spec, i).Paragraphs, "\n"))
		}
	}
	ext, err := ner.Train(texts, ner.TrainOptions{Epochs: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	_ = ext
	for _, workers := range []int{1, 4} {
		for _, serialize := range []bool{false, true} {
			b.Run(fmt.Sprintf("workers=%d/serialize=%v", workers, serialize), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tab, err := experiments.PipelineWorkers(2, []int{workers}, int64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					_ = tab
				}
			})
		}
	}
}

// --- E4: NER extraction speed (quality is measured by skg-bench -exp ner) ---

func BenchmarkNERExtract(b *testing.B) {
	ext, err := experiments.TrainNER(1, 80)
	if err != nil {
		b.Fatal(err)
	}
	web := sources.NewWeb(1, sources.DefaultSources(10))
	text := strings.Join(web.GenerateTruth(web.Sources()[0], 1).Paragraphs, "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext.Extract(text)
	}
}

func BenchmarkNERBaselineExtract(b *testing.B) {
	base := ner.NewBaseline()
	web := sources.NewWeb(1, sources.DefaultSources(10))
	text := strings.Join(web.GenerateTruth(web.Sources()[0], 1).Paragraphs, "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base.Extract(text)
	}
}

// --- E5: IOC protection overhead ---

func BenchmarkIOCProtection(b *testing.B) {
	web := sources.NewWeb(1, sources.DefaultSources(10))
	text := strings.Join(web.GenerateTruth(web.Sources()[0], 2).Paragraphs, "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ioc.Protect(text)
		p.Restore(p.Protected)
	}
}

// --- E6: label synthesis strategies (training cost) ---

func BenchmarkLabelSynthesisTraining(b *testing.B) {
	web := sources.NewWeb(1, sources.DefaultSources(5))
	var texts []string
	for _, spec := range web.Sources()[:10] {
		for i := 0; i < 3; i++ {
			texts = append(texts, strings.Join(web.GenerateTruth(spec, i).Paragraphs, "\n"))
		}
	}
	for _, strat := range []ner.LabelingStrategy{ner.StrategyLabelModel, ner.StrategyMajority} {
		b.Run(string(strat), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ner.Train(texts, ner.TrainOptions{Strategy: strat, Epochs: 2, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E7: relation extraction speed ---

func BenchmarkRelationExtract(b *testing.B) {
	ext, err := experiments.TrainNER(1, 80)
	if err != nil {
		b.Fatal(err)
	}
	web := sources.NewWeb(1, sources.DefaultSources(10))
	text := strings.Join(web.GenerateTruth(web.Sources()[0], 3).Paragraphs, "\n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ext.ExtractRelations(text)
	}
}

// --- E8: fusion pass ---

func BenchmarkFusionPass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := graph.New()
		for m := 0; m < 500; m++ {
			name := fmt.Sprintf("Mal%d", m/3)
			switch m % 3 {
			case 1:
				name = "W32/" + name
			case 2:
				name = strings.ToUpper(name)
			}
			id, _ := s.MergeNode("Malware", name, nil)
			ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", m/250, m%250), nil)
			s.AddEdge(id, "CONNECT", ip, nil)
		}
		b.StartTimer()
		if _, err := fusion.Fuse(s, fusion.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: graph merge path (ontology-shaped inserts) ---

func BenchmarkGraphMergeNode(b *testing.B) {
	s := graph.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MergeNode("Malware", fmt.Sprintf("m%d", i%10000), nil)
	}
}

// --- E10: keyword search ---

func BenchmarkKeywordSearch(b *testing.B) {
	idx := search.NewIndex(map[string]float64{"title": 2})
	web := sources.NewWeb(1, sources.DefaultSources(40))
	n := 0
	for _, spec := range web.Sources() {
		for i := 0; i < spec.Reports && n < 1000; i++ {
			truth := web.GenerateTruth(spec, i)
			idx.Add(search.Document{ID: fmt.Sprintf("%s-%d", spec.Slug, i),
				Fields: map[string]string{"title": truth.Title,
					"body": strings.Join(truth.Paragraphs, "\n")}})
			n++
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search("wannacry ransomware", 10)
	}
}

// --- E11: cypher queries, index on/off ---

func BenchmarkCypherQuery(b *testing.B) {
	s := graph.New()
	for i := 0; i < 20000; i++ {
		id, _ := s.MergeNode("Malware", fmt.Sprintf("malware-%d", i), nil)
		ip, _ := s.MergeNode("IP", fmt.Sprintf("10.%d.%d.%d", i%200, (i/200)%200, i%250), nil)
		s.AddEdge(id, "CONNECT", ip, nil)
	}
	q := `match (n) where n.name = "malware-5000" return n`
	for _, useIdx := range []bool{true, false} {
		b.Run(fmt.Sprintf("index=%v", useIdx), func(b *testing.B) {
			eng := cypher.NewEngine(s, cypher.Options{UseIndexes: useIdx, MaxRows: 1000})
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E15: planned streaming engine vs legacy matcher ---

// benchKG is a 20k-node KG with malware hubs and IP fan-out, shared by
// the planner benchmarks.
func benchKG() *graph.Store {
	s := graph.New()
	for i := 0; i < 10000; i++ {
		id, _ := s.MergeNode("Malware", fmt.Sprintf("malware-%d", i), nil)
		for k := 0; k < 2; k++ {
			ip, _ := s.MergeNode("IP", fmt.Sprintf("10.%d.%d.%d", i%200, (i/200)%200, k), nil)
			s.AddEdge(id, "CONNECT", ip, nil)
		}
	}
	return s
}

// BenchmarkCypherPlannerVsLegacy compares the two engines on the query
// shapes that matter: point lookups, full multi-hop joins, and LIMIT-ed
// multi-hop where the streaming executor's early cutoff dominates (the
// legacy matcher materializes every match before truncating). Repeated
// planned runs hit the engine's plan cache (skipping parse+plan), the
// same advantage a serving workload sees; legacy re-parses every run.
func BenchmarkCypherPlannerVsLegacy(b *testing.B) {
	s := benchKG()
	queries := []struct {
		name string
		q    string
	}{
		{"point", `match (n) where n.name = "malware-5000" return n`},
		{"2-hop", `match (m {name: "malware-5000"})-[:CONNECT]->(ip)<-[:CONNECT]-(m2) return m2.name`},
		{"reversed-entry", `match (ip)<-[:CONNECT]-(m {name: "malware-5000"}) return ip.name`},
		{"multi-hop-limit", `match (m:Malware)-[:CONNECT]->(ip)<-[:CONNECT]-(m2) return m.name, m2.name limit 20`},
		{"scan-limit", `match (m:Malware)-[:CONNECT]->(ip) return m.name, ip.name limit 10`},
	}
	for _, q := range queries {
		for _, legacy := range []bool{false, true} {
			mode := "planned"
			if legacy {
				mode = "legacy"
			}
			b.Run(fmt.Sprintf("%s/%s", q.name, mode), func(b *testing.B) {
				eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 100000, Legacy: legacy})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(q.q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E16: variable-length path traversal (threat-hunt shape) ---

// BenchmarkCypherVarLengthPath measures the bounded-BFS VarExpand
// operator on the hunt-style query "what is within k undirected hops of
// this malware" over the 20k-node KG, where the shared-IP structure
// makes each extra hop fan out across neighboring malware. Compared on
// both engines; the streaming path also exercises WITH + collect.
func BenchmarkCypherVarLengthPath(b *testing.B) {
	s := benchKG()
	queries := []struct {
		name string
		q    string
	}{
		{"1..2-hop", `match (m {name: "malware-5000"})-[:CONNECT*1..2]-(x) return count(*)`},
		{"1..3-hop", `match (m {name: "malware-5000"})-[:CONNECT*1..3]-(x) return count(*)`},
		{"collect-2-hop", `match (m {name: "malware-5000"})-[:CONNECT*1..2]-(x) with m, collect(x.name) as reach return m.name, reach`},
	}
	for _, q := range queries {
		for _, legacy := range []bool{false, true} {
			mode := "planned"
			if legacy {
				mode = "legacy"
			}
			b.Run(fmt.Sprintf("%s/%s", q.name, mode), func(b *testing.B) {
				eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 100000, Legacy: legacy})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Run(q.q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- E17: prepared statements vs per-query parse+plan ---

// BenchmarkCypherPreparedVsParse measures the per-query overhead the
// driver-grade API removes. "prepared" executes one Stmt with a
// rotating $name binding (one parse+plan ever; every run binds params
// and hits the shared plan cache), "parse-literal" re-submits a
// literal-substituted query string per run — the pre-parameter call
// pattern — so every run misses the plan cache and pays
// lex+parse+plan+store again. Both arms use the hunt-shaped statement
// interactive threat-hunting issues per indicator, and both bind
// indicators absent from the graph: the point seek misses, so the
// shared execution work is near zero and the spread between the arms
// is the per-query overhead itself. "prepared-hit" is the same
// statement with matching bindings, for the end-to-end number.
func BenchmarkCypherPreparedVsParse(b *testing.B) {
	s := benchKG()
	paramQ := `match (m:Malware {name: $name})-[:CONNECT]->(ip)` +
		` where ip.name starts with "10." and not ip.name ends with ".zz" and m.name contains "malware"` +
		` return m.name as malware, ip.name as address limit 5`
	litQ := `match (m:Malware {name: "absent-%d"})-[:CONNECT]->(ip)` +
		` where ip.name starts with "10." and not ip.name ends with ".zz" and m.name contains "malware"` +
		` return m.name as malware, ip.name as address limit 5`
	b.Run("prepared", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		stmt, err := eng.Prepare(paramQ)
		if err != nil {
			b.Fatal(err)
		}
		args := map[string]any{"name": ""}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args["name"] = fmt.Sprintf("absent-%d", i%10000)
			if _, err := stmt.Query(args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-literal", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(fmt.Sprintf(litQ, i%10000), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared-hit", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		stmt, err := eng.Prepare(paramQ)
		if err != nil {
			b.Fatal(err)
		}
		args := map[string]any{"name": ""}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args["name"] = fmt.Sprintf("malware-%d", i%10000)
			if _, err := stmt.Query(args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E18: streaming cursor vs materialized results ---

// BenchmarkCypherRowsStreaming measures the Rows cursor against full
// materialization on a 20k-row scan: "rows-first10" pulls ten rows and
// closes (the interactive-hunting shape — upstream matching stops at
// the tenth row), "materialize-all" drains the same query through the
// compatibility Query path.
func BenchmarkCypherRowsStreaming(b *testing.B) {
	s := benchKG()
	q := `match (m:Malware)-[:CONNECT]->(ip) return m.name, ip.name`
	b.Run("rows-first10", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := eng.QueryRows(q, nil)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 10 && rows.Next(); j++ {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			rows.Close()
		}
	})
	b.Run("materialize-all", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E19: join strategies (PR 5) ---

// BenchmarkCypherHashJoinVsNestedLoop measures the cross-chain equality
// join: two 400-node label scans linked only by a.name = b.name. The
// planned engine hashes the cheaper side (one pass over each scan); the
// legacy engine is the nested-loop baseline, re-enumerating the second
// chain for every row of the first (160k pairs per execution).
func BenchmarkCypherHashJoinVsNestedLoop(b *testing.B) {
	s := graph.New()
	for i := 0; i < 400; i++ {
		s.MergeNode("Src", fmt.Sprintf("k%d", i), nil)
		s.MergeNode("Dst", fmt.Sprintf("k%d", i+100), nil)
	}
	q := `match (a:Src), (b:Dst) where a.name = b.name return count(*)`
	for _, legacy := range []bool{false, true} {
		mode := "hash-join"
		if legacy {
			mode = "nested-loop"
		}
		b.Run(mode, func(b *testing.B) {
			eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, Legacy: legacy})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(q)
				if err != nil {
					b.Fatal(err)
				}
				if res.Rows[0][0].Num != 300 {
					b.Fatalf("join count = %v, want 300", res.Rows[0][0].Num)
				}
			}
		})
	}
}

// BenchmarkCypherBiExpand measures a 4-hop symmetric chain with both
// endpoints pinned on a dense 20-node clique: the planned engine's
// BiExpand collapses walk multiplicities level by level (counted
// frontier expansion, ~20 map entries per level); the legacy engine is
// the one-sided baseline, enumerating all 19^3 ≈ 6.9k complete walks
// (and visiting 19^4 ≈ 130k edges) per execution.
func BenchmarkCypherBiExpand(b *testing.B) {
	s := graph.New()
	ids := make([]graph.NodeID, 20)
	for i := range ids {
		ids[i], _ = s.MergeNode("H", fmt.Sprintf("h%d", i), nil)
	}
	for i := range ids {
		for j := range ids {
			if i != j {
				s.AddEdge(ids[i], "R", ids[j], nil)
			}
		}
	}
	q := `match (a:H {name: "h0"})-[:R]->()-[:R]->()-[:R]->()-[:R]->(b:H {name: "h1"}) return count(*)`
	for _, legacy := range []bool{false, true} {
		mode := "bi-expand"
		if legacy {
			mode = "one-sided"
		}
		b.Run(mode, func(b *testing.B) {
			eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, Legacy: legacy})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCypherParallelScan measures the partitioned full scan on a
// 50k-node store: a contains-filtered aggregate that must touch every
// node. workers=1 is the sequential baseline; workers=4 partitions the
// ID list across four goroutines and re-merges in ID order
// (byte-identical output). The spread tracks the machine's core count —
// on a single-core host the two arms measure the same work plus the
// fan-out overhead.
func BenchmarkCypherParallelScan(b *testing.B) {
	s := graph.New()
	for i := 0; i < 50000; i++ {
		s.MergeNode("T", fmt.Sprintf("node-%05d", i), nil)
	}
	q := `match (n:T) where n.name contains "42" return count(*)`
	for _, workers := range []int{1, 4} {
		mode := fmt.Sprintf("workers=%d", workers)
		b.Run(mode, func(b *testing.B) {
			eng := cypher.NewEngine(s, cypher.Options{UseIndexes: true, ScanWorkers: workers})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E12: layout, Barnes-Hut vs exact ---

func BenchmarkLayoutBarnesHut(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchLayoutGraph(n)
			e := layout.NewEngine(g, layout.Config{Theta: 0.5}, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

func BenchmarkLayoutExact(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchLayoutGraph(n)
			e := layout.NewEngine(g, layout.Config{Exact: true}, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Step()
			}
		})
	}
}

func benchLayoutGraph(n int) layout.Graph {
	g := layout.Graph{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{i / 2, i})
	}
	return g
}

// --- E13: exploration operations ---

func BenchmarkExpandFrom(b *testing.B) {
	s := graph.New()
	hub, _ := s.MergeNode("Malware", "hub", nil)
	for i := 0; i < 5000; i++ {
		id, _ := s.MergeNode("IP", fmt.Sprintf("ip-%d", i), nil)
		s.AddEdge(hub, "CONNECT", id, nil)
		if i%10 == 0 {
			id2, _ := s.MergeNode("Domain", fmt.Sprintf("d-%d", i), nil)
			s.AddEdge(id, "RESOLVE_TO", id2, nil)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ExpandFrom([]graph.NodeID{hub}, 2, 25, 100)
	}
}

func BenchmarkRandomSubgraph(b *testing.B) {
	s := graph.New()
	var prev graph.NodeID
	for i := 0; i < 5000; i++ {
		id, _ := s.MergeNode("Malware", fmt.Sprintf("m-%d", i), nil)
		if i > 0 {
			s.AddEdge(prev, "RELATED_TO", id, nil)
		}
		prev = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RandomSubgraph(int64(i), 50)
	}
}

// BenchmarkCypherMerge measures the write path end-to-end: a prepared
// parameterized MERGE + SET per operation (the durable server's hot
// ingest-by-query shape). merge-hit binds names that already exist;
// merge-create allocates a new node per iteration.
func BenchmarkCypherMerge(b *testing.B) {
	b.Run("merge-hit", func(b *testing.B) {
		s := benchKG()
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		stmt, err := eng.Prepare(`merge (m:Malware {name: $name}) set m.seen = "1"`)
		if err != nil {
			b.Fatal(err)
		}
		args := map[string]any{"name": ""}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args["name"] = fmt.Sprintf("malware-%d", i%10000)
			if _, err := stmt.Query(args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("merge-create", func(b *testing.B) {
		s := benchKG()
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		stmt, err := eng.Prepare(`merge (m:Malware {name: $name})`)
		if err != nil {
			b.Fatal(err)
		}
		args := map[string]any{"name": ""}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args["name"] = fmt.Sprintf("fresh-%d", i)
			if _, err := stmt.Query(args); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures write-ahead log append throughput: one
// store mutation (alternating node merge / edge add) teed through the
// mutation hook into the length-prefixed CRC-checked log, under each
// fsync policy. bytes/op reflects the record framing overhead.
func BenchmarkWALAppend(b *testing.B) {
	for _, pol := range []storage.SyncPolicy{storage.SyncNever, storage.SyncInterval} {
		b.Run("fsync-"+pol.String(), func(b *testing.B) {
			db, err := storage.Open(b.TempDir(), storage.Options{Sync: pol, CompactBytes: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			st := db.Store()
			seed, _ := st.MergeNode("Seed", "seed", nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					st.MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"seen": "1"})
				} else {
					id, _ := st.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", (i/250)%250, i%250), nil)
					st.AddEdge(seed, "CONNECT", id, nil)
				}
			}
			b.StopTimer()
			b.SetBytes(db.WALSize() / int64(b.N))
		})
	}
}

// BenchmarkWALRecovery measures cold-start recovery: Open replaying a
// 20k-mutation WAL (no snapshot) into a fresh store, then the same
// directory after a checkpoint (snapshot load + empty log).
func BenchmarkWALRecovery(b *testing.B) {
	build := func(b *testing.B, checkpoint bool) string {
		dir := b.TempDir()
		db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		seed, _ := db.Store().MergeNode("Seed", "seed", nil)
		for i := 0; i < 20000; i++ {
			id, _ := db.Store().MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"seen": "1"})
			db.Store().AddEdge(seed, "USE", id, nil)
		}
		if checkpoint {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		db.Close()
		return dir
	}
	for _, tc := range []struct {
		name       string
		checkpoint bool
	}{{"wal-replay-20k", false}, {"snapshot-20k", true}} {
		b.Run(tc.name, func(b *testing.B) {
			dir := build(b, tc.checkpoint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := storage.Open(dir, storage.Options{Sync: storage.SyncNever, CompactBytes: -1})
				if err != nil {
					b.Fatal(err)
				}
				if db.Store().CountNodes() != 20001 {
					b.Fatalf("recovered %d nodes", db.Store().CountNodes())
				}
				db.Close()
			}
		})
	}
}

// --- E17: MVCC snapshot reads vs an exclusive global lock ---

// BenchmarkConcurrentReadersDuringWrites measures reader throughput
// while a background session commits multi-statement transactions.
// "exclusive" is the pre-MVCC discipline: a global lock serializes every
// reader behind the writer (the only way to get consistent reads when a
// write spans several mutations). "snapshot" is the MVCC engine as
// shipped: each read pins a consistent snapshot and never blocks, so
// parallel readers scale while the writer churns.
func BenchmarkConcurrentReadersDuringWrites(b *testing.B) {
	build := func() *cypher.Engine {
		s := graph.New()
		for i := 0; i < 5000; i++ {
			id, _ := s.MergeNode("Malware", fmt.Sprintf("malware-%d", i), nil)
			ip, _ := s.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", i/250, i%250), nil)
			s.AddEdge(id, "CONNECT", ip, nil)
		}
		return cypher.NewEngine(s, cypher.Options{UseIndexes: true, MaxRows: 1000, MaxBytes: 16 << 20})
	}
	readQ := `match (m {name: "malware-2500"})-[:CONNECT]->(ip) return ip.name`

	run := func(b *testing.B, exclusive bool) {
		eng := build()
		var gate sync.Mutex
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if exclusive {
					gate.Lock()
				}
				if tx, err := eng.Begin(); err == nil {
					tx.Query(fmt.Sprintf(`merge (n:Churn {name: "c%d"}) set n.val = "%d"`, i%256, i), nil)
					tx.Query(fmt.Sprintf(`merge (n:Churn {name: "d%d"}) set n.val = "%d"`, i%256, i), nil)
					tx.Commit()
				}
				if exclusive {
					gate.Unlock()
				}
			}
		}()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if exclusive {
					gate.Lock()
				}
				_, err := eng.Query(readQ, nil)
				if exclusive {
					gate.Unlock()
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("exclusive", func(b *testing.B) { run(b, true) })
	b.Run("snapshot", func(b *testing.B) { run(b, false) })
}

// --- E20: EXPLAIN ANALYZE instrumentation overhead (PR 9) ---

// BenchmarkCypherAnalyzeOverhead measures what per-operator profiling
// costs. "analyze-off" is the ordinary prepared hot path (point seek +
// expand, plan-cache hit every run) — the instrumentation is attached
// only when a profile sink exists, so this arm must stay within noise
// of pre-instrumentation numbers. "analyze-on" runs the same statement
// through QueryAnalyze, paying the decorator and clock reads per pull,
// plus plan rendering. The spread is the price of `explain analyze`,
// paid only by queries that ask for it.
func BenchmarkCypherAnalyzeOverhead(b *testing.B) {
	s := benchKG()
	q := `match (m:Malware {name: $name})-[:CONNECT]->(ip) return ip.name`
	b.Run("analyze-off", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		stmt, err := eng.Prepare(q)
		if err != nil {
			b.Fatal(err)
		}
		args := map[string]any{"name": ""}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args["name"] = fmt.Sprintf("malware-%d", i%10000)
			res, err := stmt.Query(args)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 2 {
				b.Fatalf("rows = %d, want 2", len(res.Rows))
			}
		}
	})
	b.Run("analyze-on", func(b *testing.B) {
		eng := cypher.NewEngine(s, cypher.DefaultOptions())
		args := map[string]any{"name": ""}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			args["name"] = fmt.Sprintf("malware-%d", i%10000)
			res, plan, err := eng.QueryAnalyze(q, args)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 2 || plan == "" {
				b.Fatalf("rows = %d, plan %q", len(res.Rows), plan)
			}
		}
	})
}
