// Package securitykg is the public facade of the SecurityKG reproduction:
// a system for automated open-source cyber threat intelligence (OSCTI)
// gathering and management (Gao et al., SIGMOD 2021).
//
// A System bundles the full lifecycle the paper describes: collection
// (crawler framework over 40+ sources), processing (porter → checker →
// parser → extractor pipeline with CRF-based entity recognition and
// dependency-based relation extraction), storage (property-graph,
// relational, and log connectors plus a BM25 search index), knowledge
// fusion, and exploration (Cypher-subset queries, keyword search,
// Barnes-Hut layout, node expansion).
//
// Quickstart:
//
//	sys, _ := securitykg.New(securitykg.Options{ReportsPerSource: 10})
//	sys.Collect(context.Background())
//	sys.Fuse()
//	hits, _ := sys.Search("wannacry", 5)
//	res, _ := sys.CypherP(`match (n) where n.name = $ioc return n`,
//		map[string]any{"ioc": "wannacry"})
package securitykg

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"

	"securitykg/internal/config"
	"securitykg/internal/connector"
	"securitykg/internal/crawler"
	"securitykg/internal/ctirep"
	"securitykg/internal/cypher"
	"securitykg/internal/embed"
	"securitykg/internal/fusion"
	"securitykg/internal/graph"
	"securitykg/internal/ioc"
	"securitykg/internal/metrics"
	"securitykg/internal/ner"
	"securitykg/internal/pipeline"
	"securitykg/internal/relstore"
	"securitykg/internal/search"
	"securitykg/internal/sources"
	"securitykg/internal/stix"
	"securitykg/internal/textproc"
)

// Options configure a System. The zero value is usable: it builds the full
// 42-source synthetic web with 25 reports each and trains the NER model by
// data programming on a corpus sample.
type Options struct {
	// Seed drives every deterministic component (default 42).
	Seed int64
	// ReportsPerSource scales the synthetic corpus (default 25).
	ReportsPerSource int
	// SourceSlugs restricts collection to the named sources (nil = all).
	SourceSlugs []string
	// Config, when non-nil, overrides the per-field options above with a
	// full configuration document.
	Config *config.Config
	// LogWriter receives the log connector's output when the "log"
	// connector is selected (default os.Stderr -> discarded if nil).
	LogWriter io.Writer
}

// System is a fully wired SecurityKG instance.
type System struct {
	cfg   config.Config
	web   *sources.Web
	specs []sources.SourceSpec

	Store    *graph.Store
	Index    *search.Index
	RelStore *relstore.Store
	NER      *ner.Extractor

	frame   *crawler.Framework
	relConn *connector.RelConnector
	logW    io.Writer
}

// New builds a System: it assembles the synthetic OSCTI web, trains the
// NER extractor on an unlabeled corpus sample via data programming, and
// prepares storage backends.
func New(opts Options) (*System, error) {
	cfg := config.Default()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.ReportsPerSource != 0 {
		cfg.ReportsPerSource = opts.ReportsPerSource
	}
	if opts.SourceSlugs != nil {
		cfg.Sources = opts.SourceSlugs
	}

	specs := sources.DefaultSources(cfg.ReportsPerSource)
	if len(cfg.Sources) > 0 {
		want := make(map[string]bool, len(cfg.Sources))
		for _, s := range cfg.Sources {
			want[s] = true
		}
		var filtered []sources.SourceSpec
		for _, s := range specs {
			if want[s.Slug] {
				filtered = append(filtered, s)
			}
		}
		if len(filtered) == 0 {
			return nil, fmt.Errorf("securitykg: no sources match config selection %v", cfg.Sources)
		}
		specs = filtered
	}
	web := sources.NewWeb(cfg.Seed, specs)

	sys := &System{
		cfg:   cfg,
		web:   web,
		specs: specs,
		Store: graph.New(),
		Index: search.NewIndex(map[string]float64{"title": 2.0}),
		logW:  opts.LogWriter,
	}
	// Report nodes are looked up by report_id when resolving search hits.
	sys.Store.IndexAttr("report_id")

	ext, err := sys.trainNER()
	if err != nil {
		return nil, err
	}
	sys.NER = ext

	sys.frame = crawler.New(web, specs, crawler.Config{
		Workers:    cfg.Crawler.Workers,
		MaxRetries: cfg.Crawler.MaxRetries,
	})
	return sys, nil
}

// trainNER samples report texts across sources and trains the extractor
// with programmatically synthesized labels (no manual annotations).
func (sys *System) trainNER() (*ner.Extractor, error) {
	var texts []string
	n := sys.cfg.NER.TrainDocs
	perSource := n/len(sys.specs) + 1
	for _, spec := range sys.specs {
		for i := 0; i < perSource && i < spec.Reports && len(texts) < n; i++ {
			truth := sys.web.GenerateTruth(spec, i)
			texts = append(texts, strings.Join(truth.Paragraphs, "\n"))
		}
	}
	strategy := ner.LabelingStrategy(sys.cfg.NER.Strategy)
	if strategy == "" {
		strategy = ner.StrategyLabelModel
	}
	var clusters map[string]int
	if sys.cfg.NER.Embeddings {
		c, err := trainEmbeddingClusters(texts, sys.cfg.Seed)
		if err != nil {
			return nil, err
		}
		clusters = c
	}
	ext, err := ner.Train(texts, ner.TrainOptions{
		Strategy: strategy,
		Epochs:   sys.cfg.NER.Epochs,
		Seed:     sys.cfg.Seed,
		Clusters: clusters,
	})
	if err != nil {
		return nil, fmt.Errorf("securitykg: NER training: %w", err)
	}
	return ext, nil
}

// trainEmbeddingClusters learns skip-gram word embeddings on the training
// corpus and discretizes them into k-means cluster ids, which the CRF
// consumes as "emb=<id>" features (the paper lists word embeddings among
// the CRF features).
func trainEmbeddingClusters(texts []string, seed int64) (map[string]int, error) {
	var sentences [][]string
	for _, text := range texts {
		prot := ioc.Protect(text)
		for _, s := range textproc.SplitSentences(prot.Protected) {
			var words []string
			for _, tok := range textproc.Tokenize(s.Text) {
				if !tok.IsPunct() {
					words = append(words, strings.ToLower(tok.Text))
				}
			}
			if len(words) > 1 {
				sentences = append(sentences, words)
			}
		}
	}
	emb, err := embed.Train(sentences, embed.Config{Dim: 24, Epochs: 3, Seed: seed, MinCount: 2})
	if err != nil {
		return nil, fmt.Errorf("securitykg: embedding training: %w", err)
	}
	return emb.Clusters(32, 20, seed), nil
}

// Web exposes the synthetic OSCTI web (for demos and experiments).
func (sys *System) Web() *sources.Web { return sys.web }

// Sources lists the configured source specs.
func (sys *System) Sources() []sources.SourceSpec { return sys.web.Sources() }

// Config returns the effective configuration.
func (sys *System) Config() config.Config { return sys.cfg }

// CollectStats pairs the two stage reports from a Collect run.
type CollectStats struct {
	Crawl   crawler.Stats
	Process pipeline.Stats
}

// Collect runs one incremental end-to-end pass: crawl every source, then
// process the collected files through the full pipeline into storage.
// Repeated calls only process newly published reports.
func (sys *System) Collect(ctx context.Context) (CollectStats, error) {
	files := make(chan ctirep.RawFile, 256)
	p, err := sys.buildPipeline()
	if err != nil {
		return CollectStats{}, err
	}
	var pstats pipeline.Stats
	var perr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		pstats, perr = p.Run(ctx, files)
	}()
	crawlErr := sys.frame.RunOnce(ctx, func(rf ctirep.RawFile) {
		select {
		case files <- rf:
		case <-ctx.Done():
		}
	})
	close(files)
	<-done
	st := CollectStats{Crawl: sys.frame.Stats(), Process: pstats}
	if crawlErr != nil {
		return st, fmt.Errorf("securitykg: collect: %w", crawlErr)
	}
	return st, perr
}

func (sys *System) buildPipeline() (*pipeline.Pipeline, error) {
	var checkers []pipeline.Checker
	for _, name := range sys.cfg.Checkers {
		switch name {
		case "nonempty":
			checkers = append(checkers, pipeline.NonemptyChecker{})
		case "not-ads":
			checkers = append(checkers, pipeline.NotAdsChecker{})
		}
	}
	var conns []connector.Connector
	for _, name := range sys.cfg.Connectors {
		switch name {
		case "graph":
			conns = append(conns, connector.NewGraphConnector(sys.Store, sys.Index))
		case "log":
			w := sys.logW
			if w == nil {
				w = os.Stderr
			}
			conns = append(conns, connector.NewLogConnector(w))
		case "relational":
			if sys.relConn == nil {
				sys.RelStore = relstore.New()
				rc, err := connector.NewRelConnector(sys.RelStore)
				if err != nil {
					return nil, fmt.Errorf("securitykg: relational connector: %w", err)
				}
				sys.relConn = rc
			}
			conns = append(conns, sys.relConn)
		}
	}
	if len(conns) == 0 {
		conns = append(conns, connector.NewGraphConnector(sys.Store, sys.Index))
	}
	return &pipeline.Pipeline{
		Porter:   pipeline.NewGroupingPorter(),
		Checkers: checkers,
		Parsers:  pipeline.DefaultParsers(sys.specs),
		Extractors: []pipeline.Extractor{
			pipeline.EntityExtractor{NER: sys.NER},
			pipeline.RelationExtractor{NER: sys.NER},
		},
		Connectors: conns,
		Cfg: pipeline.Config{
			PortWorkers:    sys.cfg.Pipeline.PortWorkers,
			CheckWorkers:   sys.cfg.Pipeline.CheckWorkers,
			ParseWorkers:   sys.cfg.Pipeline.ParseWorkers,
			ExtractWorkers: sys.cfg.Pipeline.ExtractWorkers,
			ConnectWorkers: sys.cfg.Pipeline.ConnectWorkers,
			Serialize:      sys.cfg.Pipeline.Serialize,
		},
	}, nil
}

// Fuse runs the knowledge-fusion stage over the graph, merging alias
// entities and migrating their edges.
func (sys *System) Fuse() (fusion.Stats, error) {
	return fusion.Fuse(sys.Store, fusion.Options{Types: sys.cfg.Fusion.Types})
}

// SearchHit is one keyword search result resolved to its report node.
type SearchHit struct {
	ReportID string
	Score    float64
	Title    string
	Kind     string
	URL      string
}

// Search runs a BM25 keyword query over report title/body and resolves
// hits to report metadata (the UI's Elasticsearch path).
func (sys *System) Search(query string, k int) ([]SearchHit, error) {
	hits := sys.Index.Search(query, k)
	out := make([]SearchHit, 0, len(hits))
	for _, h := range hits {
		sh := SearchHit{ReportID: h.ID, Score: h.Score}
		for _, nt := range []string{"MalwareReport", "VulnerabilityReport", "AttackReport"} {
			for _, n := range sys.Store.NodesByAttr("report_id", h.ID) {
				if n.Type == nt {
					sh.Title = n.Name
					sh.Kind = n.Type
					sh.URL = n.Attrs["url"]
				}
			}
		}
		out = append(out, sh)
	}
	return out, nil
}

// engine builds a query engine over the current store. Engines are
// cheap to construct: the compiled-plan cache is shared per store, so
// repeated statements hit cached plans across calls (and across every
// other consumer of the same store, e.g. an API server).
func (sys *System) engine() *cypher.Engine {
	return cypher.NewEngine(sys.Store, cypher.DefaultOptions())
}

// Cypher executes a Cypher-subset query with no parameters against the
// knowledge graph (the UI's Neo4j path). Queries embedding untrusted
// values — IOC strings, report titles — should use CypherP instead of
// splicing them into the query text.
func (sys *System) Cypher(query string) (*cypher.Result, error) {
	return sys.CypherP(query, nil)
}

// CypherP executes a parameterized query: $name placeholders in the
// query text are bound from params at execution time, so one cached
// plan serves every binding and values never need escaping.
//
//	sys.CypherP(`match (m {name: $ioc})-[:CONNECT]->(x) return x.name`,
//		map[string]any{"ioc": observed})
func (sys *System) CypherP(query string, params map[string]any) (*cypher.Result, error) {
	return sys.engine().Query(query, params)
}

// CypherRows executes a parameterized query and returns a streaming
// cursor: rows surface as they are matched, and closing the cursor
// early stops all remaining pattern matching. The caller must Close it.
func (sys *System) CypherRows(query string, params map[string]any) (*cypher.Rows, error) {
	return sys.engine().QueryRows(query, params)
}

// PrepareCypher parses and plans a statement once for repeated
// execution with different parameter bindings (threat-hunting loops,
// API handlers). The statement remains valid until the graph is
// replaced with LoadGraph.
func (sys *System) PrepareCypher(query string) (*cypher.Stmt, error) {
	return sys.engine().Prepare(query)
}

// CypherAnalyze executes a parameterized statement fully and returns
// its result together with the profiled plan: per-operator actual
// rows, input rows, iterator calls, and wall time rendered next to the
// planner's estimates (EXPLAIN ANALYZE as an API). The statement's
// effects are real — writes commit.
func (sys *System) CypherAnalyze(query string, params map[string]any) (*cypher.Result, string, error) {
	return sys.engine().QueryAnalyze(query, params)
}

// Metrics renders the process-wide runtime metrics (query latencies,
// plan-cache traffic, WAL and checkpoint activity, MVCC and
// transaction counters) in Prometheus text format, plus this system's
// store gauges. Embedding callers get the same exposition an
// skg-server /metrics scrape serves.
func (sys *System) Metrics() string {
	var b strings.Builder
	metrics.Render(&b)
	gs := sys.Store.Stats()
	mv := sys.Store.MVCCStats()
	inst := metrics.NewRegistry()
	inst.GaugeFunc("skg_store_nodes", "Live nodes in the store.",
		func() float64 { return float64(gs.Nodes) })
	inst.GaugeFunc("skg_store_edges", "Live edges in the store.",
		func() float64 { return float64(gs.Edges) })
	inst.GaugeFunc("skg_store_stats_version", "Planner statistics version.",
		func() float64 { return float64(sys.Store.StatsVersion()) })
	inst.GaugeFunc("skg_mvcc_open_snapshots", "Open MVCC snapshots pinning history.",
		func() float64 { return float64(mv.Snapshots) })
	inst.Render(&b)
	return b.String()
}

// SaveGraph persists the knowledge graph to path.
func (sys *System) SaveGraph(path string) error { return sys.Store.SaveFile(path) }

// ExportSTIX writes the knowledge graph as a STIX 2.1-style bundle, making
// it consumable by standard CTI tooling.
func (sys *System) ExportSTIX(w io.Writer) error { return stix.Export(sys.Store, w) }

// AdoptStore replaces the knowledge graph with an externally managed
// store — the durability layer's recovered store, whose mutations are
// write-ahead-logged — and installs the attribute indexes the system
// expects. Ingestion, fusion and Cypher writes all flow into it from
// here on.
func (sys *System) AdoptStore(st *graph.Store) {
	st.IndexAttr("report_id")
	sys.Store = st
}

// RebuildIndex reconstructs the keyword search index from the report
// nodes already in the graph (title field only; bodies are not
// persisted). Used after adopting a recovered store, where ingestion —
// which indexes bodies as it runs — did not populate the index.
func (sys *System) RebuildIndex() {
	idx := search.NewIndex(map[string]float64{"title": 2.0})
	sys.Store.ForEachNode(func(n *graph.Node) bool {
		if strings.HasSuffix(n.Type, "Report") {
			id := n.Attrs["report_id"]
			if id == "" {
				id = fmt.Sprint(n.ID)
			}
			idx.Add(search.Document{ID: id, Fields: map[string]string{"title": n.Name}})
		}
		return true
	})
	sys.Index = idx
}

// LoadGraph replaces the knowledge graph with one loaded from path.
func (sys *System) LoadGraph(path string) error {
	s, err := graph.LoadFile(path)
	if err != nil {
		return err
	}
	s.IndexAttr("report_id")
	sys.Store = s
	return nil
}
