// Command skg runs the end-to-end SecurityKG lifecycle: collect OSCTI
// reports from the synthetic web, process them through the pipeline into
// the knowledge graph, optionally run knowledge fusion, and persist the
// graph.
//
// Usage:
//
//	skg [-config file.json] [-reports N] [-out kg.jsonl] [-fuse] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"securitykg"
	"securitykg/internal/config"
)

func main() {
	var (
		configPath = flag.String("config", "", "JSON configuration file (see internal/config)")
		reports    = flag.Int("reports", 0, "override reports per source")
		out        = flag.String("out", "", "persist the knowledge graph to this path")
		stixOut    = flag.String("stix", "", "export the graph as a STIX 2.1 bundle to this path")
		fuse       = flag.Bool("fuse", true, "run the knowledge-fusion stage after ingest")
		verbose    = flag.Bool("v", false, "verbose per-type statistics")
	)
	flag.Parse()

	cfg := config.Default()
	if *configPath != "" {
		var err error
		cfg, err = config.Load(*configPath)
		if err != nil {
			log.Fatalf("skg: %v", err)
		}
	}
	opts := securitykg.Options{Config: &cfg}
	if *reports > 0 {
		opts.ReportsPerSource = *reports
	}

	fmt.Println("skg: training NER extractor by data programming...")
	sys, err := securitykg.New(opts)
	if err != nil {
		log.Fatalf("skg: %v", err)
	}
	fmt.Printf("skg: %d sources configured\n", len(sys.Sources()))

	st, err := sys.Collect(context.Background())
	if err != nil {
		log.Fatalf("skg: collect: %v", err)
	}
	fmt.Printf("skg: crawled %d files in %s (%.0f reports/min), %d retries, %d failures\n",
		st.Crawl.Collected, st.Crawl.Elapsed.Round(1e6), st.Crawl.ReportsPerMinute(),
		st.Crawl.Retries, st.Crawl.Failures)
	fmt.Printf("skg: processed %d reports (%d rejected by checkers, %d parse errors) in %s\n",
		st.Process.Connected, st.Process.Rejected, st.Process.ParseErrs,
		st.Process.Elapsed.Round(1e6))

	if *fuse && cfg.Fusion.Enabled {
		fstats, err := sys.Fuse()
		if err != nil {
			log.Fatalf("skg: fusion: %v", err)
		}
		fmt.Printf("skg: fusion merged %d nodes across %d alias groups\n",
			fstats.NodesMerged, fstats.Groups)
	}

	gs := sys.Store.Stats()
	fmt.Printf("skg: knowledge graph: %d nodes, %d edges, %d storage-time merges\n",
		gs.Nodes, gs.Edges, gs.MergeHits)
	if *verbose {
		types := make([]string, 0, len(gs.NodesByType))
		for t := range gs.NodesByType {
			types = append(types, t)
		}
		sort.Strings(types)
		for _, t := range types {
			fmt.Printf("  %-22s %6d\n", t, gs.NodesByType[t])
		}
	}

	path := *out
	if path == "" {
		path = cfg.GraphPath
	}
	if path != "" {
		if err := sys.SaveGraph(path); err != nil {
			log.Fatalf("skg: save: %v", err)
		}
		fmt.Printf("skg: graph saved to %s\n", path)
	}
	if *stixOut != "" {
		f, err := os.Create(*stixOut)
		if err != nil {
			log.Fatalf("skg: stix: %v", err)
		}
		if err := sys.ExportSTIX(f); err != nil {
			log.Fatalf("skg: stix: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("skg: stix: %v", err)
		}
		fmt.Printf("skg: STIX bundle written to %s\n", *stixOut)
	}
	os.Exit(0)
}
