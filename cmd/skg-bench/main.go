// Command skg-bench regenerates every experiment in DESIGN.md's index
// (E1-E13), printing the same tables EXPERIMENTS.md records.
//
// Usage:
//
//	skg-bench                 # run every experiment at default scale
//	skg-bench -exp ner        # one experiment
//	skg-bench -exp scale -scale 120000   # the paper-scale 120K ingest
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"securitykg/internal/experiments"
)

type expDef struct {
	id, name string
	run      func(scale int, seed int64) (*experiments.Table, error)
}

var defs = []expDef{
	{"E1", "crawl", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.CrawlThroughput([]int{1, 2, 4, 8, 16}, 40, seed)
	}},
	{"E2", "scale", func(scale int, seed int64) (*experiments.Table, error) {
		if scale <= 0 {
			scale = 5000
		}
		return experiments.ScaleIngest(scale, seed)
	}},
	{"E3", "pipeline", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.PipelineWorkers(25, []int{1, 2, 4, 8}, seed)
	}},
	{"E4", "ner", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.NERQuality(150, 300, seed)
	}},
	{"E5", "iocprot", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.IOCProtection(200, seed)
	}},
	{"E6", "labelmodel", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.LabelingStrategies(150, 200, seed)
	}},
	{"E7", "relext", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.RelationExtraction(150, seed)
	}},
	{"E8", "fusion", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.FusionExperiment(25, seed)
	}},
	{"E9", "ontology", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.OntologyCoverage(25, seed)
	}},
	{"E10", "search", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.SearchScenarios(60, seed)
	}},
	{"E11", "cypher", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.CypherScaling([]int{1000, 10000, 50000}, seed)
	}},
	{"E12", "layout", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.LayoutScaling([]int{100, 500, 2000, 8000, 20000}, 0.5, seed)
	}},
	{"E13", "explore", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.ExploreOps(50000, seed)
	}},
	{"E14", "embeddings", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.EmbeddingFeatures(150, 200, seed)
	}},
	{"E15", "planner", func(_ int, seed int64) (*experiments.Table, error) {
		return experiments.PlannerComparison([]int{1000, 10000, 50000}, seed)
	}},
}

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run: E1..E15 or name (crawl, scale, pipeline, ner, iocprot, labelmodel, relext, fusion, ontology, search, cypher, layout, explore, embeddings, planner); empty = all")
		scale = flag.Int("scale", 0, "scale override for -exp scale (default 5000; paper scale 120000)")
		seed  = flag.Int64("seed", 42, "experiment seed")
	)
	flag.Parse()

	var selected []expDef
	if *exp == "" {
		selected = defs
	} else {
		for _, d := range defs {
			if strings.EqualFold(d.id, *exp) || strings.EqualFold(d.name, *exp) {
				selected = append(selected, d)
			}
		}
		if len(selected) == 0 {
			log.Fatalf("skg-bench: unknown experiment %q", *exp)
		}
	}
	for _, d := range selected {
		start := time.Now()
		tab, err := d.run(*scale, *seed)
		if err != nil {
			log.Fatalf("skg-bench: %s: %v", d.id, err)
		}
		tab.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %s]\n\n", d.id, time.Since(start).Round(time.Millisecond))
	}
}
