// Command skg-server builds (or recovers) a knowledge graph and serves
// the exploration API the paper's web UI consumes: /api/search,
// /api/cypher (reads and writes), /api/node, /api/expand,
// /api/collapse, /api/random, /api/back, and /api/stats, with
// Barnes-Hut layout positions on every returned subgraph. The synthetic
// OSCTI web itself is exposed under /s/ for inspection.
//
// With -data-dir the server is durable: boot loads the latest snapshot
// and replays the write-ahead log tail (tolerating a torn final record
// from a crash), every mutation — ingestion, fusion, Cypher writes — is
// logged before the response, the log self-compacts past a size
// threshold, and SIGTERM/SIGINT snapshots before exit. Restarting the
// server therefore resumes exactly where it stopped instead of
// re-ingesting from scratch.
//
// A durable server is also a replication leader: /replication/snapshot
// and /replication/wal let any number of read replicas bootstrap and
// tail its write-ahead log. Start a replica with -replicate-from
// pointing at the leader; it serves every read endpoint (honoring
// min_seq read-your-writes tokens) and answers writes with an HTTP 421
// redirect naming the leader. /healthz and /replication/status report
// role, applied sequence numbers, and lag.
//
// Usage:
//
//	skg-server [-addr :8080] [-reports 10] [-graph kg.jsonl]
//	           [-data-dir ./data] [-fsync interval|always|never]
//	           [-codec binary|json] [-compact-mb 64]
//	           [-replicate-from http://leader:8080] [-advertise URL]
//	           [-slow-query-ms 200] [-ingest-limit-mb 32]
//
// GET /metrics serves Prometheus text-format counters and gauges for
// the query engine, storage, MVCC, and replication layers;
// -slow-query-ms logs statements over a latency threshold (statement
// text only — bound parameter values never appear in logs).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"securitykg"
	"securitykg/internal/cypher"
	"securitykg/internal/replication"
	"securitykg/internal/server"
	"securitykg/internal/storage"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		reports   = flag.Int("reports", 10, "reports per source to ingest when the store starts empty")
		graphIn   = flag.String("graph", "", "serve a persisted graph file instead of ingesting (read-only snapshot load)")
		dataDir   = flag.String("data-dir", "", "durable data directory (snapshot + write-ahead log); state survives restarts")
		fsyncFlag = flag.String("fsync", "interval", "WAL fsync policy: always (fsync per write), interval (group commit), never")
		codecFlag = flag.String("codec", "binary", "on-disk WAL/snapshot codec: binary | json (recovery reads either; the directory converts at its next checkpoint)")
		compactMB = flag.Int("compact-mb", 64, "snapshot and truncate the WAL once it exceeds this many MiB (0 disables automatic compaction)")
		readOnly  = flag.Bool("read-only", false, "reject Cypher write statements on /api/cypher (implied by -graph, which serves a snapshot whose writes would not persist)")
		replFrom  = flag.String("replicate-from", "", "run as a read-only replica of the leader at this base URL (e.g. http://leader:8080); requires -data-dir")
		advertise = flag.String("advertise", "", "base URL replicas and redirected clients should use to reach this node (leader side)")
		slowMS    = flag.Int("slow-query-ms", 0, "log /api/cypher statements slower than this many milliseconds with kind, duration, rows, and budget bytes (0 disables; parameter values are never logged)")
		ingestMB  = flag.Int("ingest-limit-mb", 32, "answer write statements with 429 + Retry-After once this many MiB of write request bodies are in flight (backpressure; 0 disables)")
	)
	flag.Parse()
	if *replFrom != "" && *dataDir == "" {
		log.Fatalf("skg-server: -replicate-from requires -data-dir (the replica's own durable state)")
	}

	fmt.Println("skg-server: building system...")
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: *reports})
	if err != nil {
		log.Fatalf("skg-server: %v", err)
	}

	var db *storage.DB
	switch {
	case *dataDir != "":
		policy, err := storage.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		codec, err := storage.ParseCodec(*codecFlag)
		if err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		compactBytes := int64(*compactMB) << 20
		if *compactMB <= 0 {
			compactBytes = -1 // flag semantics: 0 disables (Options treats 0 as "default")
		}
		if *replFrom != "" {
			// Replica bootstrap: an empty data dir is filled from a
			// leader snapshot before Open; a dir with state resumes
			// from its own WAL and catches up over the tail stream.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			if err := replication.Bootstrap(ctx, *dataDir, *replFrom, nil, log.Default()); err != nil {
				log.Fatalf("skg-server: %v", err)
			}
			cancel()
		}
		db, err = storage.Open(*dataDir, storage.Options{
			Sync:         policy,
			CompactBytes: compactBytes,
			Codec:        codec,
		})
		if err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		fmt.Printf("skg-server: recovered %s (snapshot seq %d, %d WAL records replayed, torn tail: %v)\n",
			*dataDir, db.Recovered.SnapshotSeq, db.Recovered.Replayed, db.Recovered.TornTail)
		// Adopt before ingesting so every ingested mutation is logged.
		sys.AdoptStore(db.Store())
		if *replFrom == "" && db.Store().CountNodes() == 0 && *reports > 0 {
			// Bulk bracket: boot ingest is one load, so adjacency seals
			// and planner stats settle once at the end instead of the
			// store re-judging materiality after every mutation.
			db.Store().BeginBulk()
			ingest(sys)
			db.Store().EndBulk()
			if err := db.Checkpoint(); err != nil {
				log.Fatalf("skg-server: post-ingest checkpoint: %v", err)
			}
			fmt.Println("skg-server: initial ingest checkpointed")
		} else {
			sys.RebuildIndex()
		}
		if *replFrom != "" {
			// A replica's store is the leader's store: local Cypher
			// writes would fork it, so the engine is read-only and the
			// server redirects writers to the leader.
			*readOnly = true
		}
	case *graphIn != "":
		if err := sys.LoadGraph(*graphIn); err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		sys.RebuildIndex()
		// A -graph snapshot has no write-ahead log behind it: accepting
		// writes would silently drop them on restart.
		*readOnly = true
		fmt.Printf("skg-server: loaded graph from %s (read-only)\n", *graphIn)
	default:
		sys.Store.BeginBulk()
		ingest(sys)
		sys.Store.EndBulk()
	}
	gs := sys.Store.Stats()
	fmt.Printf("skg-server: knowledge graph: %d nodes, %d edges\n", gs.Nodes, gs.Edges)

	opts := cypher.DefaultOptions()
	opts.ReadOnly = *readOnly
	srv := server.NewWith(sys.Store, sys.Index, opts)
	srv.SetIngestLimit(int64(*ingestMB) << 20)
	if *slowMS > 0 {
		srv.SetSlowQueryLog(time.Duration(*slowMS)*time.Millisecond, log.Default())
	}
	mux := http.NewServeMux()
	mux.Handle("/api/", srv)
	mux.Handle("/healthz", srv)
	mux.Handle("/metrics", srv)
	mux.Handle("/s/", sys.Web()) // the synthetic OSCTI web itself

	// Replication wiring: a durable node is a leader (it can serve
	// snapshots and its WAL tail to replicas, whether or not any ever
	// connect); -replicate-from turns it into a replica instead.
	var repl *replication.Replicator
	switch {
	case db != nil && *replFrom != "":
		repl = replication.NewReplicator(db, *replFrom)
		repl.Log = log.Default()
		repl.RegisterStatus(mux)
		srv.SetReplication(server.Replication{
			Role:      "replica",
			LeaderURL: *replFrom,
			Seq:       repl.AppliedSeq,
			WaitSeq:   repl.WaitApplied,
			Lag:       func() int64 { return repl.Status().LagRecords },
			Health: func() map[string]any {
				st := repl.Status()
				h := map[string]any{
					"dir_locked":  true,
					"data_dir":    *dataDir,
					"state":       st.State,
					"applied_seq": st.CommittedSeq,
					"lag_records": st.LagRecords,
				}
				if err := db.Err(); err != nil {
					h["durability_error"] = err.Error()
				}
				return h
			},
		})
		go func() {
			if err := repl.Run(context.Background()); err != nil {
				log.Printf("skg-server: replication stopped: %v", err)
			}
		}()
		fmt.Printf("skg-server: replica of %s (data dir %s)\n", *replFrom, *dataDir)
	case db != nil:
		leader := &replication.Leader{DB: db, Advertise: *advertise, Log: log.Default()}
		leader.Register(mux)
		srv.SetReplication(server.Replication{
			Role: "primary",
			Seq:  db.CommittedSeq,
			Lag:  func() int64 { return 0 },
			Health: func() map[string]any {
				h := map[string]any{
					"dir_locked":    true,
					"data_dir":      *dataDir,
					"committed_seq": db.CommittedSeq(),
				}
				if err := db.Err(); err != nil {
					h["durability_error"] = err.Error()
				}
				return h
			},
		})
	}

	if db != nil {
		// Watch for durability failures: writes keep succeeding in
		// memory while the WAL is poisoned (a checkpoint self-heals once
		// the directory is writable again), so transitions are loud.
		go func() {
			var last string
			for range time.Tick(2 * time.Second) {
				msg := ""
				if err := db.Err(); err != nil {
					msg = err.Error()
				}
				if msg != last {
					if msg != "" {
						log.Printf("skg-server: DURABILITY DEGRADED: %s", msg)
					} else {
						log.Printf("skg-server: durability restored (checkpoint re-based the log)")
					}
					last = msg
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	if db != nil {
		// Snapshot-and-sync on SIGTERM/SIGINT so the next boot replays a
		// short (usually empty) WAL tail. Ordering matters: drain the
		// listener FIRST — a write acknowledged after db.Close detached
		// the mutation hook would reach the store but never the WAL, and
		// silently vanish on the very restart this shutdown prepares.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
		go func() {
			sig := <-sigc
			fmt.Printf("\nskg-server: %v: draining connections...\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("skg-server: shutdown: %v", err)
			}
			cancel()
			fmt.Printf("skg-server: checkpointing %s...\n", *dataDir)
			if err := db.Checkpoint(); err != nil {
				log.Printf("skg-server: shutdown checkpoint: %v", err)
			}
			if err := db.Close(); err != nil {
				log.Printf("skg-server: close: %v", err)
			}
			os.Exit(0)
		}()
	}

	fmt.Printf("skg-server: listening on %s (try /api/stats, /api/search?q=wannacry)\n", *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	select {} // Shutdown in flight: the signal goroutine exits the process
}

func ingest(sys *securitykg.System) {
	st, err := sys.Collect(context.Background())
	if err != nil {
		log.Fatalf("skg-server: collect: %v", err)
	}
	if _, err := sys.Fuse(); err != nil {
		log.Fatalf("skg-server: fuse: %v", err)
	}
	fmt.Printf("skg-server: ingested %d reports\n", st.Process.Connected)
}
