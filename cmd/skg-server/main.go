// Command skg-server builds (or recovers) a knowledge graph and serves
// the exploration API the paper's web UI consumes: /api/search,
// /api/cypher (reads and writes), /api/node, /api/expand,
// /api/collapse, /api/random, /api/back, and /api/stats, with
// Barnes-Hut layout positions on every returned subgraph. The synthetic
// OSCTI web itself is exposed under /s/ for inspection.
//
// With -data-dir the server is durable: boot loads the latest snapshot
// and replays the write-ahead log tail (tolerating a torn final record
// from a crash), every mutation — ingestion, fusion, Cypher writes — is
// logged before the response, the log self-compacts past a size
// threshold, and SIGTERM/SIGINT snapshots before exit. Restarting the
// server therefore resumes exactly where it stopped instead of
// re-ingesting from scratch.
//
// Usage:
//
//	skg-server [-addr :8080] [-reports 10] [-graph kg.jsonl]
//	           [-data-dir ./data] [-fsync interval|always|never]
//	           [-codec binary|json] [-compact-mb 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"securitykg"
	"securitykg/internal/cypher"
	"securitykg/internal/server"
	"securitykg/internal/storage"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		reports   = flag.Int("reports", 10, "reports per source to ingest when the store starts empty")
		graphIn   = flag.String("graph", "", "serve a persisted graph file instead of ingesting (read-only snapshot load)")
		dataDir   = flag.String("data-dir", "", "durable data directory (snapshot + write-ahead log); state survives restarts")
		fsyncFlag = flag.String("fsync", "interval", "WAL fsync policy: always (fsync per write), interval (group commit), never")
		codecFlag = flag.String("codec", "binary", "on-disk WAL/snapshot codec: binary | json (recovery reads either; the directory converts at its next checkpoint)")
		compactMB = flag.Int("compact-mb", 64, "snapshot and truncate the WAL once it exceeds this many MiB (0 disables automatic compaction)")
		readOnly  = flag.Bool("read-only", false, "reject Cypher write statements on /api/cypher (implied by -graph, which serves a snapshot whose writes would not persist)")
	)
	flag.Parse()

	fmt.Println("skg-server: building system...")
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: *reports})
	if err != nil {
		log.Fatalf("skg-server: %v", err)
	}

	var db *storage.DB
	switch {
	case *dataDir != "":
		policy, err := storage.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		codec, err := storage.ParseCodec(*codecFlag)
		if err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		compactBytes := int64(*compactMB) << 20
		if *compactMB <= 0 {
			compactBytes = -1 // flag semantics: 0 disables (Options treats 0 as "default")
		}
		db, err = storage.Open(*dataDir, storage.Options{
			Sync:         policy,
			CompactBytes: compactBytes,
			Codec:        codec,
		})
		if err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		fmt.Printf("skg-server: recovered %s (snapshot seq %d, %d WAL records replayed, torn tail: %v)\n",
			*dataDir, db.Recovered.SnapshotSeq, db.Recovered.Replayed, db.Recovered.TornTail)
		// Adopt before ingesting so every ingested mutation is logged.
		sys.AdoptStore(db.Store())
		if db.Store().CountNodes() == 0 && *reports > 0 {
			ingest(sys)
			if err := db.Checkpoint(); err != nil {
				log.Fatalf("skg-server: post-ingest checkpoint: %v", err)
			}
			fmt.Println("skg-server: initial ingest checkpointed")
		} else {
			sys.RebuildIndex()
		}
	case *graphIn != "":
		if err := sys.LoadGraph(*graphIn); err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		sys.RebuildIndex()
		// A -graph snapshot has no write-ahead log behind it: accepting
		// writes would silently drop them on restart.
		*readOnly = true
		fmt.Printf("skg-server: loaded graph from %s (read-only)\n", *graphIn)
	default:
		ingest(sys)
	}
	gs := sys.Store.Stats()
	fmt.Printf("skg-server: knowledge graph: %d nodes, %d edges\n", gs.Nodes, gs.Edges)

	opts := cypher.DefaultOptions()
	opts.ReadOnly = *readOnly
	mux := http.NewServeMux()
	mux.Handle("/api/", server.NewWith(sys.Store, sys.Index, opts))
	mux.Handle("/s/", sys.Web()) // the synthetic OSCTI web itself

	if db != nil {
		// Watch for durability failures: writes keep succeeding in
		// memory while the WAL is poisoned (a checkpoint self-heals once
		// the directory is writable again), so transitions are loud.
		go func() {
			var last string
			for range time.Tick(2 * time.Second) {
				msg := ""
				if err := db.Err(); err != nil {
					msg = err.Error()
				}
				if msg != last {
					if msg != "" {
						log.Printf("skg-server: DURABILITY DEGRADED: %s", msg)
					} else {
						log.Printf("skg-server: durability restored (checkpoint re-based the log)")
					}
					last = msg
				}
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	if db != nil {
		// Snapshot-and-sync on SIGTERM/SIGINT so the next boot replays a
		// short (usually empty) WAL tail. Ordering matters: drain the
		// listener FIRST — a write acknowledged after db.Close detached
		// the mutation hook would reach the store but never the WAL, and
		// silently vanish on the very restart this shutdown prepares.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
		go func() {
			sig := <-sigc
			fmt.Printf("\nskg-server: %v: draining connections...\n", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := httpSrv.Shutdown(ctx); err != nil {
				log.Printf("skg-server: shutdown: %v", err)
			}
			cancel()
			fmt.Printf("skg-server: checkpointing %s...\n", *dataDir)
			if err := db.Checkpoint(); err != nil {
				log.Printf("skg-server: shutdown checkpoint: %v", err)
			}
			if err := db.Close(); err != nil {
				log.Printf("skg-server: close: %v", err)
			}
			os.Exit(0)
		}()
	}

	fmt.Printf("skg-server: listening on %s (try /api/stats, /api/search?q=wannacry)\n", *addr)
	err = httpSrv.ListenAndServe()
	if err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	select {} // Shutdown in flight: the signal goroutine exits the process
}

func ingest(sys *securitykg.System) {
	st, err := sys.Collect(context.Background())
	if err != nil {
		log.Fatalf("skg-server: collect: %v", err)
	}
	if _, err := sys.Fuse(); err != nil {
		log.Fatalf("skg-server: fuse: %v", err)
	}
	fmt.Printf("skg-server: ingested %d reports\n", st.Process.Connected)
}
