// Command skg-server builds (or loads) a knowledge graph and serves the
// exploration API the paper's web UI consumes: /api/search, /api/cypher,
// /api/node, /api/expand, /api/collapse, /api/random, /api/back, and
// /api/stats, with Barnes-Hut layout positions on every returned subgraph.
// The synthetic OSCTI web itself is exposed under /s/ for inspection.
//
// Usage:
//
//	skg-server [-addr :8080] [-reports 10] [-graph kg.jsonl]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"

	"securitykg"
	"securitykg/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		reports = flag.Int("reports", 10, "reports per source to ingest at startup")
		graphIn = flag.String("graph", "", "serve a persisted graph instead of ingesting")
	)
	flag.Parse()

	fmt.Println("skg-server: building system...")
	sys, err := securitykg.New(securitykg.Options{ReportsPerSource: *reports})
	if err != nil {
		log.Fatalf("skg-server: %v", err)
	}
	if *graphIn != "" {
		if err := sys.LoadGraph(*graphIn); err != nil {
			log.Fatalf("skg-server: %v", err)
		}
		fmt.Printf("skg-server: loaded graph from %s\n", *graphIn)
	} else {
		st, err := sys.Collect(context.Background())
		if err != nil {
			log.Fatalf("skg-server: collect: %v", err)
		}
		if _, err := sys.Fuse(); err != nil {
			log.Fatalf("skg-server: fuse: %v", err)
		}
		fmt.Printf("skg-server: ingested %d reports\n", st.Process.Connected)
	}
	gs := sys.Store.Stats()
	fmt.Printf("skg-server: knowledge graph: %d nodes, %d edges\n", gs.Nodes, gs.Edges)

	mux := http.NewServeMux()
	mux.Handle("/api/", server.New(sys.Store, sys.Index))
	mux.Handle("/s/", sys.Web()) // the synthetic OSCTI web itself
	fmt.Printf("skg-server: listening on %s (try /api/stats, /api/search?q=wannacry)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
