// Command skg-query is an interactive query shell over a persisted
// knowledge graph: Cypher-subset statements run against the graph engine
// and stream row by row; lines starting with "/" run keyword search
// over report nodes. Queries are parameterized with $name placeholders
// bound via \set, so hunted values (IOC strings, report titles) are
// never spliced into query text — and every execution of the same
// statement text reuses one cached plan.
//
// With -data-dir the shell is a durable client: it opens (or creates)
// a write-ahead-logged data directory, so CREATE/MERGE/SET/DELETE
// statements persist across sessions — every write is logged before its
// counts print, and quitting checkpoints the store. With -graph the
// shell is read-only-durable: writes mutate only the in-memory copy.
//
// Usage:
//
//	skg-query -graph kg.jsonl          (or: -data-dir ./data)
//	> \set ioc wannacry
//	> match (n) where n.name = $ioc return n
//	> merge (m:Malware {name: $ioc}) set m.triaged = "true"
//	> match (m {name: $ioc})-[:CONNECT*1..3]-(x) return x.name
//	> optional match (m:Malware)-[:USE]->(t) with m, collect(t.name) as tools return m.name, tools
//	> explain match (m:Malware)-[*1..2]-(x) return x.name limit 5
//	> begin
//	> set m.reviewed = "true" ... (several statements, then) commit
//	> rollback
//	> \params
//	> /wannacry ransomware
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"securitykg/internal/cypher"
	"securitykg/internal/graph"
	"securitykg/internal/search"
	"securitykg/internal/storage"
)

func main() {
	graphPath := flag.String("graph", "kg.jsonl", "persisted knowledge graph file (ignored when -data-dir is set)")
	dataDir := flag.String("data-dir", "", "durable data directory: writes are WAL-logged and survive across sessions")
	fsyncFlag := flag.String("fsync", "interval", "WAL fsync policy with -data-dir: always | interval | never")
	codecFlag := flag.String("codec", "binary", "on-disk WAL/snapshot codec with -data-dir: binary | json (recovery reads either; the directory converts at its next checkpoint)")
	explain := flag.Bool("explain", false, "print the query plan before each result (EXPLAIN <query> also works per statement)")
	flag.Parse()

	var store *graph.Store
	var db *storage.DB
	if *dataDir != "" {
		policy, err := storage.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatalf("skg-query: %v", err)
		}
		codec, err := storage.ParseCodec(*codecFlag)
		if err != nil {
			log.Fatalf("skg-query: %v", err)
		}
		db, err = storage.Open(*dataDir, storage.Options{Sync: policy, Codec: codec})
		if err != nil {
			log.Fatalf("skg-query: %v", err)
		}
		store = db.Store()
		gs := store.Stats()
		fmt.Printf("skg-query: recovered %d nodes, %d edges from %s (snapshot seq %d, %d WAL records replayed)\n",
			gs.Nodes, gs.Edges, *dataDir, db.Recovered.SnapshotSeq, db.Recovered.Replayed)
		defer func() {
			if err := db.Checkpoint(); err != nil {
				log.Printf("skg-query: checkpoint: %v", err)
			}
			if err := db.Close(); err != nil {
				log.Printf("skg-query: close: %v", err)
			}
		}()
	} else {
		var err error
		store, err = graph.LoadFile(*graphPath)
		if err != nil {
			log.Fatalf("skg-query: %v", err)
		}
		gs := store.Stats()
		fmt.Printf("skg-query: loaded %d nodes, %d edges from %s (writes will NOT persist; use -data-dir)\n",
			gs.Nodes, gs.Edges, *graphPath)
	}
	fmt.Println(`skg-query: enter Cypher (reads and writes, e.g. merge (m:Malware {name: $ioc}) set m.triaged = "true"),`)
	fmt.Println(`  BEGIN / COMMIT / ROLLBACK for multi-statement transactions,`)
	fmt.Println(`  \set name value / \unset name / \params to manage $parameters,`)
	fmt.Println(`  explain <query> for plans, \analyze <query> (or explain analyze <query>) for`)
	fmt.Println(`  profiled execution with per-operator rows and timings, /keyword search, or "quit"`)

	// Rebuild the keyword index from report nodes (title only; bodies are
	// not persisted in the graph).
	idx := search.NewIndex(nil)
	store.ForEachNode(func(n *graph.Node) bool {
		if strings.HasSuffix(n.Type, "Report") {
			idx.Add(search.Document{ID: fmt.Sprint(n.ID),
				Fields: map[string]string{"title": n.Name}})
		}
		return true
	})
	eng := cypher.NewEngine(store, cypher.DefaultOptions())
	params := map[string]any{}
	var tx *cypher.Tx // open multi-statement transaction, if any

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "quit" || line == "exit":
			// An open transaction must not outlive the shell: roll it
			// back so the exit checkpoint can take the writer lock.
			if tx != nil {
				tx.Rollback()
				fmt.Println("(open transaction rolled back)")
			}
			return
		case line == `\analyze` || strings.HasPrefix(line, `\analyze `):
			stmt := strings.TrimSpace(strings.TrimPrefix(line, `\analyze`))
			if stmt == "" {
				fmt.Println(`usage: \analyze <statement>`)
				break
			}
			if tx != nil {
				fmt.Println(`error: \analyze runs as its own statement — COMMIT or ROLLBACK the open transaction first`)
				break
			}
			runAnalyze(eng, stmt, params)
		case strings.HasPrefix(line, `\`):
			runMeta(line, params)
		case strings.HasPrefix(line, "/"):
			hits := idx.Search(strings.TrimPrefix(line, "/"), 10)
			if len(hits) == 0 {
				fmt.Println("no hits")
			}
			for _, h := range hits {
				fmt.Printf("  %8s  score=%.3f\n", h.ID, h.Score)
			}
		default:
			// An inline "explain ..." statement already prints its plan as
			// rows; don't duplicate it under -explain.
			if *explain && !strings.HasPrefix(strings.ToLower(line), "explain") {
				if plan, err := eng.Explain(line); err == nil {
					fmt.Print(plan)
				}
			}
			tx = runStatement(eng, tx, line, params)
			if db != nil {
				if err := db.Err(); err != nil {
					fmt.Printf("WARNING: writes are not durable right now: %v (a checkpoint will re-base once the directory is writable)\n", err)
				}
			}
		}
		fmt.Print("> ")
	}
	if tx != nil {
		tx.Rollback()
	}
}

// runStatement routes BEGIN/COMMIT/ROLLBACK and runs everything else —
// inside the open transaction when there is one (reads then see the
// transaction's snapshot plus its own uncommitted writes), otherwise as
// an autocommit statement. Returns the still-open transaction, if any.
func runStatement(eng *cypher.Engine, tx *cypher.Tx, line string, params map[string]any) *cypher.Tx {
	op, err := cypher.TxOpOf(line)
	if err != nil {
		fmt.Println("error:", err)
		return tx
	}
	switch op {
	case cypher.TxBegin:
		if tx != nil {
			fmt.Println("error: a transaction is already open (COMMIT or ROLLBACK first)")
			return tx
		}
		t, err := eng.Begin()
		if err != nil {
			fmt.Println("error:", err)
			return nil
		}
		fmt.Println("transaction open: writes are invisible to other clients until COMMIT")
		return t
	case cypher.TxCommit:
		if tx == nil {
			fmt.Println("error: no open transaction")
			return nil
		}
		if err := tx.Commit(); err != nil {
			tx.Rollback()
			fmt.Println("error:", err)
		} else {
			fmt.Println("committed")
		}
		return nil
	case cypher.TxRollback:
		if tx == nil {
			fmt.Println("error: no open transaction")
			return nil
		}
		if err := tx.Rollback(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("rolled back")
		}
		return nil
	}
	if tx != nil {
		runQuery(tx, line, params)
		return tx
	}
	runQuery(eng, line, params)
	return nil
}

// rowQuerier is the streaming surface runQuery needs — satisfied by
// both the engine (autocommit) and an open transaction.
type rowQuerier interface {
	QueryRows(src string, args map[string]any) (*cypher.Rows, error)
}

// runQuery streams the statement's rows as the executor produces them,
// so the first match of a long hunt prints immediately.
func runQuery(q rowQuerier, line string, params map[string]any) {
	rows, err := q.QueryRows(line, params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	if cols := rows.Columns(); len(cols) > 0 {
		fmt.Println(strings.Join(cols, " | "))
	}
	n := 0
	for rows.Next() {
		vals := rows.Row()
		cells := make([]string, len(vals))
		for i, v := range vals {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Printf("(%d rows, then error: %v)\n", n, err)
		return
	}
	if ws := rows.Writes(); ws != nil {
		fmt.Printf("(%d rows; %s)\n", n, ws)
		return
	}
	fmt.Printf("(%d rows)\n", n)
}

// runAnalyze executes the statement fully and prints the profiled plan:
// per-operator actual rows, input rows, iterator calls, and wall time
// next to the planner's estimates. The statement's effects (including
// writes) are real — ANALYZE executes, it does not simulate.
func runAnalyze(eng *cypher.Engine, stmt string, params map[string]any) {
	res, plan, err := eng.QueryAnalyze(stmt, params)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(plan)
	if ws := res.Writes; ws != nil {
		fmt.Printf("(%d rows; %s)\n", len(res.Rows), ws)
		return
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

// runMeta handles the backslash commands that manage the shell's
// $parameter bindings. Values parse as number/true/false/null when they
// look like one; everything else (or anything quoted) is a string.
func runMeta(line string, params map[string]any) {
	fields := strings.Fields(line)
	switch fields[0] {
	case `\set`:
		if len(fields) < 3 {
			fmt.Println(`usage: \set name value`)
			return
		}
		params[fields[1]] = parseParamValue(strings.Join(fields[2:], " "))
	case `\unset`:
		if len(fields) != 2 {
			fmt.Println(`usage: \unset name`)
			return
		}
		delete(params, fields[1])
	case `\params`:
		if len(params) == 0 {
			fmt.Println("(no parameters set)")
			return
		}
		names := make([]string, 0, len(params))
		for k := range params {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			fmt.Printf("  $%s = %v\n", k, params[k])
		}
	default:
		fmt.Printf("unknown command %s (try \\set, \\unset, \\params, \\analyze)\n", fields[0])
	}
}

func parseParamValue(s string) any {
	if len(s) >= 2 && (s[0] == '"' || s[0] == '\'') && s[len(s)-1] == s[0] {
		return s[1 : len(s)-1]
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null":
		return nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}
