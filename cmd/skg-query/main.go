// Command skg-query is an interactive query shell over a persisted
// knowledge graph: Cypher-subset statements run against the graph engine;
// lines starting with "/" run keyword search over report nodes.
//
// Usage:
//
//	skg-query -graph kg.jsonl
//	> match (n) where n.name = "wannacry" return n
//	> match (m {name: "wannacry"})-[:CONNECT*1..3]-(x) return x.name
//	> optional match (m:Malware)-[:USE]->(t) with m, collect(t.name) as tools return m.name, tools
//	> explain match (m:Malware)-[*1..2]-(x) return x.name limit 5
//	> /wannacry ransomware
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"securitykg/internal/cypher"
	"securitykg/internal/graph"
	"securitykg/internal/search"
)

func main() {
	graphPath := flag.String("graph", "kg.jsonl", "persisted knowledge graph file")
	explain := flag.Bool("explain", false, "print the query plan before each result (EXPLAIN <query> also works per statement)")
	flag.Parse()

	store, err := graph.LoadFile(*graphPath)
	if err != nil {
		log.Fatalf("skg-query: %v", err)
	}
	gs := store.Stats()
	fmt.Printf("skg-query: loaded %d nodes, %d edges from %s\n", gs.Nodes, gs.Edges, *graphPath)
	fmt.Println(`skg-query: enter Cypher (e.g. match (m:Malware)-[:CONNECT*1..3]-(x) return x.name limit 5), explain <query>, /keyword search, or "quit"`)

	// Rebuild the keyword index from report nodes (title only; bodies are
	// not persisted in the graph).
	idx := search.NewIndex(nil)
	store.ForEachNode(func(n *graph.Node) bool {
		if strings.HasSuffix(n.Type, "Report") {
			idx.Add(search.Document{ID: fmt.Sprint(n.ID),
				Fields: map[string]string{"title": n.Name}})
		}
		return true
	})
	eng := cypher.NewEngine(store, cypher.DefaultOptions())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == "quit" || line == "exit":
			return
		case strings.HasPrefix(line, "/"):
			hits := idx.Search(strings.TrimPrefix(line, "/"), 10)
			if len(hits) == 0 {
				fmt.Println("no hits")
			}
			for _, h := range hits {
				fmt.Printf("  %8s  score=%.3f\n", h.ID, h.Score)
			}
		default:
			// An inline "explain ..." statement already prints its plan as
			// rows; don't duplicate it under -explain.
			if *explain && !strings.HasPrefix(strings.ToLower(line), "explain") {
				if plan, err := eng.Explain(line); err == nil {
					fmt.Print(plan)
				}
			}
			res, err := eng.Run(line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println(strings.Join(res.Columns, " | "))
			for _, row := range res.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			if res.Truncated {
				fmt.Printf("(%d rows, truncated by MaxRows)\n", len(res.Rows))
			} else {
				fmt.Printf("(%d rows)\n", len(res.Rows))
			}
		}
		fmt.Print("> ")
	}
}
