package securitykg

// Binary-vs-JSON storage codec benchmarks, run by `make bench-storage`
// and appended to BENCH_cypher.json. These hold the compact-storage
// acceptance numbers: binary WAL replay must stay well ahead of JSON
// (the PR's bar is 2x on the 20k-record log), appends must be cheaper
// in both time and allocations, and snapshot save/load must beat the
// JSONL stream it replaced.

import (
	"fmt"
	"testing"

	"securitykg/internal/graph"
	"securitykg/internal/storage"
)

var storageCodecs = []struct {
	name  string
	codec storage.Codec
}{
	{"binary", storage.CodecBinary},
	{"json", storage.CodecJSON},
}

// BenchmarkStorageCodecAppend measures one logged store mutation
// (alternating node merge / edge add) through the mutation hook into
// the log, per codec, without fsync noise. bytes/op is the on-disk
// footprint per mutation — the binary codec's dictionary makes it
// shrink as type/key strings repeat.
func BenchmarkStorageCodecAppend(b *testing.B) {
	for _, tc := range storageCodecs {
		b.Run(tc.name, func(b *testing.B) {
			db, err := storage.Open(b.TempDir(), storage.Options{
				Sync: storage.SyncNever, CompactBytes: -1, Codec: tc.codec,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			st := db.Store()
			seed, _ := st.MergeNode("Seed", "seed", nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%2 == 0 {
					st.MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"seen": "1"})
				} else {
					id, _ := st.MergeNode("IP", fmt.Sprintf("10.0.%d.%d", (i/250)%250, i%250), nil)
					st.AddEdge(seed, "CONNECT", id, nil)
				}
			}
			b.StopTimer()
			b.SetBytes(db.WALSize() / int64(b.N))
		})
	}
}

// buildCodecDir writes a 20k-mutation data directory in the given
// codec; checkpoint=true leaves a snapshot and an empty log,
// checkpoint=false leaves the full replayable log.
func buildCodecDir(b *testing.B, codec storage.Codec, checkpoint bool) string {
	b.Helper()
	dir := b.TempDir()
	db, err := storage.Open(dir, storage.Options{
		Sync: storage.SyncNever, CompactBytes: -1, Codec: codec,
	})
	if err != nil {
		b.Fatal(err)
	}
	seed, _ := db.Store().MergeNode("Seed", "seed", nil)
	for i := 0; i < 20000; i++ {
		id, _ := db.Store().MergeNode("Malware", fmt.Sprintf("m-%d", i), map[string]string{"seen": "1"})
		db.Store().AddEdge(seed, "USE", id, nil)
	}
	if checkpoint {
		if err := db.Checkpoint(); err != nil {
			b.Fatal(err)
		}
	}
	db.Close()
	return dir
}

// BenchmarkStorageCodecReplay measures cold-start recovery replaying a
// 20k-record WAL (no snapshot) per codec — the acceptance metric for
// the binary log format.
func BenchmarkStorageCodecReplay(b *testing.B) {
	for _, tc := range storageCodecs {
		b.Run(tc.name+"-20k", func(b *testing.B) {
			dir := buildCodecDir(b, tc.codec, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := storage.Open(dir, storage.Options{
					Sync: storage.SyncNever, CompactBytes: -1, Codec: tc.codec,
				})
				if err != nil {
					b.Fatal(err)
				}
				if db.Store().CountNodes() != 20001 {
					b.Fatalf("recovered %d nodes", db.Store().CountNodes())
				}
				db.Close()
			}
		})
	}
}

// BenchmarkStorageCodecSnapshotLoad measures cold-start from a
// checkpointed directory (snapshot load + empty log tail) per codec.
func BenchmarkStorageCodecSnapshotLoad(b *testing.B) {
	for _, tc := range storageCodecs {
		b.Run(tc.name+"-20k", func(b *testing.B) {
			dir := buildCodecDir(b, tc.codec, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db, err := storage.Open(dir, storage.Options{
					Sync: storage.SyncNever, CompactBytes: -1, Codec: tc.codec,
				})
				if err != nil {
					b.Fatal(err)
				}
				if db.Store().CountNodes() != 20001 {
					b.Fatalf("recovered %d nodes", db.Store().CountNodes())
				}
				db.Close()
			}
		})
	}
}

// BenchmarkStorageCodecSnapshotSave measures Checkpoint (snapshot write
// + fsync + WAL truncation) of a 40k-element store per codec.
func BenchmarkStorageCodecSnapshotSave(b *testing.B) {
	for _, tc := range storageCodecs {
		b.Run(tc.name+"-20k", func(b *testing.B) {
			dir := buildCodecDir(b, tc.codec, false)
			db, err := storage.Open(dir, storage.Options{
				Sync: storage.SyncNever, CompactBytes: -1, Codec: tc.codec,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Mutate so every checkpoint has a fresh seq to cover (a
				// no-op checkpoint would still rewrite the snapshot, but
				// keep the loop honest).
				db.Store().SetAttr(graph.NodeID(1), "round", fmt.Sprint(i))
				if err := db.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
