package securitykg

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"securitykg/internal/config"
)

// one shared small system per test binary: New trains a CRF, which is the
// slow part.
var (
	sysOnce  sync.Once
	sysVal   *System
	sysErr   error
	sysStats CollectStats
)

func sharedSystem(t *testing.T) (*System, CollectStats) {
	t.Helper()
	sysOnce.Do(func() {
		cfg := config.Default()
		cfg.ReportsPerSource = 6
		cfg.NER.TrainDocs = 60
		cfg.NER.Epochs = 4
		cfg.Connectors = []string{"graph", "relational"}
		sysVal, sysErr = New(Options{Config: &cfg})
		if sysErr != nil {
			return
		}
		sysStats, sysErr = sysVal.Collect(context.Background())
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal, sysStats
}

func TestSystemCollectEndToEnd(t *testing.T) {
	sys, st := sharedSystem(t)
	want := int64(len(sys.Sources()) * 6)
	if st.Process.Connected != want {
		t.Fatalf("connected %d reports, want %d", st.Process.Connected, want)
	}
	gs := sys.Store.Stats()
	if gs.Nodes < 500 {
		t.Errorf("graph too small after full collect: %+v", gs)
	}
	if sys.Index.Len() != int(want) {
		t.Errorf("search index has %d docs, want %d", sys.Index.Len(), want)
	}
	if sys.RelStore == nil {
		t.Fatal("relational connector not wired")
	}
	if n, _ := sys.RelStore.Count("reports"); n != int(want) {
		t.Errorf("relational reports: %d", n)
	}
}

func TestSystemSearchFindsReports(t *testing.T) {
	sys, _ := sharedSystem(t)
	// Search for a term every report contains.
	hits, err := sys.Search("campaign", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for common term")
	}
	for _, h := range hits {
		if h.Title == "" || h.Kind == "" {
			t.Errorf("hit not resolved to report node: %+v", h)
		}
	}
}

func TestSystemCypherDemoQuery(t *testing.T) {
	sys, _ := sharedSystem(t)
	// Find any malware node, then run the paper's demo-style point query.
	res, err := sys.Cypher(`match (n:Malware) return n.name limit 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatal("no malware nodes in KG")
	}
	name := res.Rows[0][0].Str
	res2, err := sys.Cypher(`match (n) where n.name = "` + name + `" return n.type`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) == 0 {
		t.Errorf("point query found nothing for %q", name)
	}
}

func TestSystemFuseReducesAliases(t *testing.T) {
	sys, _ := sharedSystem(t)
	before := sys.Store.Stats().Nodes
	fstats, err := sys.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	after := sys.Store.Stats().Nodes
	if fstats.NodesMerged > 0 && after >= before {
		t.Errorf("fusion merged %d but node count went %d -> %d",
			fstats.NodesMerged, before, after)
	}
	// Idempotent second pass.
	f2, err := sys.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	if f2.NodesMerged != 0 {
		t.Errorf("second fusion merged again: %+v", f2)
	}
}

func TestSystemSaveLoadGraph(t *testing.T) {
	sys, _ := sharedSystem(t)
	path := filepath.Join(t.TempDir(), "kg.jsonl")
	if err := sys.SaveGraph(path); err != nil {
		t.Fatal(err)
	}
	before := sys.Store.Stats()
	if err := sys.LoadGraph(path); err != nil {
		t.Fatal(err)
	}
	after := sys.Store.Stats()
	if before.Nodes != after.Nodes || before.Edges != after.Edges {
		t.Errorf("save/load changed graph: %+v vs %+v", before, after)
	}
}

func TestSystemSourceFiltering(t *testing.T) {
	sys, err := New(Options{
		ReportsPerSource: 2,
		SourceSlugs:      []string{"acme-encyclopedia", "hack-daily"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Sources()) != 2 {
		t.Errorf("source filter: %d sources", len(sys.Sources()))
	}
	if _, err := New(Options{SourceSlugs: []string{"nope"}}); err == nil {
		t.Error("unknown source filter accepted")
	}
}

func TestSystemLogConnector(t *testing.T) {
	var buf bytes.Buffer
	cfg := config.Default()
	cfg.ReportsPerSource = 2
	cfg.Sources = []string{"acme-encyclopedia"}
	cfg.NER.TrainDocs = 10
	cfg.NER.Epochs = 1
	cfg.Connectors = []string{"log"}
	sys, err := New(Options{Config: &cfg, LogWriter: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Collect(context.Background()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Errorf("log connector wrote %d lines, want 2", lines)
	}
}

func TestSystemWithEmbeddingFeatures(t *testing.T) {
	cfg := config.Default()
	cfg.ReportsPerSource = 3
	cfg.Sources = []string{"acme-encyclopedia", "kasper-blog"}
	cfg.NER.TrainDocs = 12
	cfg.NER.Epochs = 2
	cfg.NER.Embeddings = true
	sys, err := New(Options{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Process.Connected != 6 {
		t.Errorf("connected %d, want 6", st.Process.Connected)
	}
	if sys.Store.Stats().Nodes == 0 {
		t.Error("embedding-featured system produced empty graph")
	}
}
